"""Mappings f : E ⇀ A_f (Eq. 4 and variants)."""

import pytest

from repro._util.errors import MappingError
from repro.core.event import Event
from repro.core.mapping import (
    CallOnly,
    CallPath,
    CallPathTail,
    CallTopDirs,
    RegexMapping,
    RestrictedMapping,
    SiteVariables,
    mapping_from_callable,
    path_tail,
    truncate_topdirs,
)


def make_event(call="read", fp="/usr/lib/x86_64-linux-gnu/libc.so.6"):
    return Event(cid="a", host="h", rid=1, pid=2, call=call, start=0,
                 dur=1, fp=fp, size=10)


class TestPathHelpers:
    @pytest.mark.parametrize("fp,levels,expected", [
        ("/usr/lib/x86_64-linux-gnu/libc.so.6", 2, "/usr/lib"),
        ("/proc/filesystems", 2, "/proc/filesystems"),
        ("/dev/pts/7", 2, "/dev/pts"),
        ("/a", 2, "/a"),
        ("/a/b/c", 1, "/a"),
        ("rel/path/x", 2, "rel/path"),
        ("test.0", 2, "test.0"),
    ])
    def test_truncate_topdirs(self, fp, levels, expected):
        assert truncate_topdirs(fp, levels) == expected

    def test_truncate_levels_validated(self):
        with pytest.raises(ValueError):
            truncate_topdirs("/a/b", 0)

    @pytest.mark.parametrize("fp,levels,expected", [
        ("/usr/lib/x86_64-linux-gnu/libselinux.so.1", 2,
         "x86_64-linux-gnu/libselinux.so.1"),
        ("/etc/passwd", 2, "etc/passwd"),
        ("/x", 2, "x"),
        ("/a/b/c", 1, "c"),
    ])
    def test_path_tail(self, fp, levels, expected):
        assert path_tail(fp, levels) == expected


class TestCallTopDirs:
    def test_paper_eq4_example(self):
        # Eq. 4: first line of Fig. 2b maps to "read:/usr/lib".
        mapping = CallTopDirs(levels=2)
        assert mapping.map_event(make_event()) == "read:/usr/lib"

    def test_partial_on_missing_fp(self):
        assert CallTopDirs().map_event(make_event(fp=None)) is None

    def test_fast_path_agrees_with_event_path(self):
        mapping = CallTopDirs(levels=2)
        event = make_event()
        assert mapping.map_call_fp(event.call, event.fp) == \
            mapping.map_event(event)

    def test_newline_separator_like_fig6(self):
        mapping = CallTopDirs(levels=2, separator="\n")
        assert mapping.map_event(make_event()) == "read\n/usr/lib"

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            CallTopDirs(levels=0)


class TestOtherBuiltins:
    def test_call_path_tail_fig4_style(self):
        mapping = CallPathTail(levels=2)
        assert mapping.map_event(
            make_event(fp="/usr/lib/x86_64-linux-gnu/libselinux.so.1")
        ) == "read:x86_64-linux-gnu/libselinux.so.1"

    def test_call_path_full(self):
        assert CallPath().map_event(make_event(fp="/a/b")) == "read:/a/b"

    def test_call_only_total(self):
        assert CallOnly().map_event(make_event(fp=None)) == "read"


class TestSiteVariables:
    VARS = {"$SCRATCH": "/p/scratch", "$HOME": "/p/home",
            "Node Local": ("/dev/shm", "/tmp")}

    def test_basic_abstraction(self):
        mapping = SiteVariables(self.VARS)
        assert mapping.map_event(
            make_event(fp="/p/scratch/ssf/test")) == "read:$SCRATCH"

    def test_extra_levels_fig8b(self):
        mapping = SiteVariables(self.VARS, extra_levels=1)
        assert mapping.map_event(
            make_event(fp="/p/scratch/ssf/test")) == "read:$SCRATCH/ssf"

    def test_multiple_prefixes_one_label(self):
        mapping = SiteVariables(self.VARS)
        assert mapping.map_event(
            make_event(fp="/dev/shm/x")) == "read:Node Local"
        assert mapping.map_event(
            make_event(fp="/tmp/y")) == "read:Node Local"

    def test_longest_prefix_wins(self):
        mapping = SiteVariables(
            {"$OUTER": "/p", "$INNER": "/p/scratch"})
        assert mapping.map_event(
            make_event(fp="/p/scratch/f")) == "read:$INNER"
        assert mapping.map_event(make_event(fp="/p/other")) == \
            "read:$OUTER"

    def test_prefix_boundary_respected(self):
        # /p/scratchy must NOT match prefix /p/scratch.
        mapping = SiteVariables({"$S": "/p/scratch"},
                                unmatched="exclude")
        assert mapping.map_event(make_event(fp="/p/scratchy/f")) is None

    def test_unmatched_topdirs_fallback(self):
        mapping = SiteVariables(self.VARS, unmatched="topdirs")
        assert mapping.map_event(
            make_event(fp="/usr/lib/libc.so")) == "read:/usr/lib"

    def test_unmatched_keep(self):
        mapping = SiteVariables(self.VARS, unmatched="keep")
        assert mapping.map_event(make_event(fp="/z/q")) == "read:/z/q"

    def test_unmatched_exclude(self):
        mapping = SiteVariables(self.VARS, unmatched="exclude")
        assert mapping.map_event(make_event(fp="/z/q")) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SiteVariables(self.VARS, unmatched="banana")

    def test_exact_prefix_path(self):
        mapping = SiteVariables(self.VARS)
        assert mapping.map_event(
            make_event(fp="/p/scratch")) == "read:$SCRATCH"


class TestRegexMapping:
    def test_extension_grouping(self):
        mapping = RegexMapping(r"\.(\w+)$", "{call}:*.{g1}")
        assert mapping.map_event(make_event(fp="/a/b.txt")) == \
            "read:*.txt"

    def test_named_groups(self):
        mapping = RegexMapping(r"/(?P<top>\w+)/", "{call}@{top}")
        assert mapping.map_event(make_event(fp="/etc/passwd")) == \
            "read@etc"

    def test_non_matching_excluded(self):
        mapping = RegexMapping(r"\.log$", "{call}:log")
        assert mapping.map_event(make_event(fp="/a/b.txt")) is None

    def test_bad_template_group(self):
        mapping = RegexMapping(r"x", "{call}:{g9}")
        with pytest.raises(MappingError):
            mapping.map_event(make_event(fp="/x"))


class TestRestrictedMapping:
    def test_paper_f1_substring_restriction(self):
        # Sec. IV-A: f1 maps only events whose path contains /usr/lib.
        f1 = RestrictedMapping(CallPathTail(levels=2),
                               fp_substring="/usr/lib")
        assert f1.map_event(make_event()) == \
            "read:x86_64-linux-gnu/libc.so.6"
        assert f1.map_event(make_event(fp="/etc/passwd")) is None

    def test_via_helper(self):
        f1 = CallTopDirs().restricted_to_fp("/etc")
        assert f1.map_event(make_event(fp="/etc/passwd")) == \
            "read:/etc/passwd"
        assert f1.map_event(make_event()) is None

    def test_predicate_restriction(self):
        big_only = RestrictedMapping(
            CallOnly(), predicate=lambda e: (e.size or 0) > 100)
        assert big_only.map_event(make_event()) is None  # size=10

    def test_exactly_one_restriction_required(self):
        with pytest.raises(MappingError):
            RestrictedMapping(CallOnly())
        with pytest.raises(MappingError):
            RestrictedMapping(CallOnly(), fp_substring="/x",
                              predicate=lambda e: True)

    def test_predicate_restriction_has_no_fast_path(self):
        restricted = RestrictedMapping(CallOnly(),
                                       predicate=lambda e: True)
        assert not restricted.uses_only_call_fp
        with pytest.raises(MappingError):
            restricted.map_call_fp("read", "/x")


class TestCallableAdapter:
    def test_paper_fig6_function_runs(self):
        """The exact mapping function of the paper's Fig. 6 listing."""
        def f(event) -> str:
            fp = event["fp"]
            dirs = fp.split("/")
            if len(dirs) > 2:
                fp = f"/{dirs[1]}/{dirs[2]}"
            return f"{event['call']}\n{fp}"

        mapping = mapping_from_callable(f)
        assert mapping.map_event(make_event()) == "read\n/usr/lib"

    def test_mapping_passthrough(self):
        inner = CallOnly()
        assert mapping_from_callable(inner) is inner

    def test_non_callable_rejected(self):
        with pytest.raises(MappingError):
            mapping_from_callable(42)

    def test_wrong_return_type_rejected(self):
        mapping = mapping_from_callable(lambda e: 123)
        with pytest.raises(MappingError):
            mapping.map_event(make_event())

    def test_none_return_allowed(self):
        mapping = mapping_from_callable(lambda e: None)
        assert mapping.map_event(make_event()) is None

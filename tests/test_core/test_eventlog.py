"""EventLog: cases, filtering, mapping application, union (Eq. 2-3)."""

import numpy as np
import pytest

from repro._util.errors import MappingError, ReproError
from repro.core.eventlog import EventLog
from repro.core.mapping import CallOnly, CallTopDirs


@pytest.fixture()
def log(fig1_dir) -> EventLog:
    return EventLog.from_source(fig1_dir)


class TestShape:
    def test_cases_eq3(self, log):
        assert log.case_ids() == [
            "a9042", "a9043", "a9045", "b9157", "b9158", "b9160"]
        assert log.n_cases == 6
        assert log.cids() == ["a", "b"]
        assert log.hosts() == ["host1"]

    def test_event_count(self, log):
        assert log.n_events == 24 + 51

    def test_iter_cases_sorted(self, log):
        ids = [case_id for case_id, _ in log.iter_cases()]
        assert ids == sorted(ids)

    def test_iter_cases_frames(self, log):
        for case_id, frame in log.iter_cases():
            if case_id.startswith("a"):
                assert len(frame) == 8
            else:
                assert len(frame) == 17

    def test_events_are_time_ordered_within_case(self, log):
        for _, frame in log.iter_cases():
            starts = frame.column("start")
            assert (np.diff(starts) >= 0).all()


class TestFiltering:
    def test_apply_fp_filter_mutates(self, log):
        result = log.apply_fp_filter("/usr/lib")
        assert result is log  # chaining, paper-style
        assert log.n_events == 18
        assert log.n_cases == 6  # all cases still have lib reads

    def test_filtered_fp_functional(self, log):
        filtered = log.filtered_fp("/usr/lib")
        assert filtered.n_events == 18
        assert log.n_events == 75  # original untouched

    def test_filtered_calls(self, log):
        assert log.filtered_calls(["write"]).n_events == 15

    def test_filtered_cids(self, log):
        assert log.filtered_cids(["a"]).n_events == 24

    def test_filtered_mask_validation(self, log):
        with pytest.raises(ReproError):
            log.filtered(np.zeros(3, dtype=bool))
        with pytest.raises(ReproError):
            log.filtered(np.zeros(log.n_events, dtype=np.int64))

    def test_filter_to_empty_keeps_working(self, log):
        empty = log.filtered_fp("/nonexistent")
        assert empty.n_events == 0
        assert empty.case_ids() == []


class TestMappingApplication:
    def test_apply_mapping_fn(self, log):
        log.apply_mapping_fn(CallTopDirs(levels=2))
        assert log.mapping is not None
        assert "read:/usr/lib" in log.activities()

    def test_activities_requires_mapping(self, log):
        with pytest.raises(MappingError):
            log.activities()

    def test_with_mapping_functional(self, log):
        mapped = log.with_mapping(CallOnly())
        assert mapped.activities() == ["read", "write"]
        with pytest.raises(MappingError):
            log.activities()  # original unmapped

    def test_bare_callable_accepted(self, log):
        log.apply_mapping_fn(lambda e: e["call"])
        assert log.activities() == ["read", "write"]

    def test_fast_path_equals_rowwise(self, log):
        """Vectorized distinct-pair evaluation must agree with the
        row-by-row loop for call/fp-only mappings."""
        mapping = CallTopDirs(levels=2)
        fast = log.with_mapping(mapping)

        slow = log.with_mapping(lambda e: mapping.map_event(e))
        fast_decoded = [
            None if c == -1 else fast.frame.pools.activities.decode(int(c))
            for c in fast.frame.column("activity")]
        slow_decoded = [
            None if c == -1 else slow.frame.pools.activities.decode(int(c))
            for c in slow.frame.column("activity")]
        assert fast_decoded == slow_decoded

    def test_events_of_activity_is_reverse_mapping(self, log):
        log.apply_mapping_fn(CallTopDirs(levels=2))
        sub = log.events_of_activity("read:/usr/lib")
        assert len(sub) == 18
        assert all("/usr/lib" in p for p in sub.decoded("fp"))

    def test_events_of_unknown_activity_empty(self, log):
        log.apply_mapping_fn(CallTopDirs(levels=2))
        assert len(log.events_of_activity("nope")) == 0

    def test_partial_mapping_excludes_events(self, log):
        log.apply_mapping_fn(
            CallTopDirs(levels=2).restricted_to_fp("/usr/lib"))
        assert log.activities() == ["read:/usr/lib"]
        codes = log.frame.column("activity")
        assert (codes == -1).sum() == log.n_events - 18


class TestUnion:
    def test_union_eq3(self, fig1_dir):
        ca = EventLog.from_source(fig1_dir, cids={"a"})
        cb = EventLog.from_source(fig1_dir, cids={"b"})
        cx = ca | cb
        assert cx.n_cases == 6
        assert cx.n_events == 75

    def test_union_overlapping_cases_rejected(self, fig1_dir):
        ca = EventLog.from_source(fig1_dir, cids={"a"})
        ca2 = EventLog.from_source(fig1_dir, cids={"a"})
        with pytest.raises(ReproError, match="overlapping"):
            ca | ca2

    def test_union_reapplies_shared_mapping(self, fig1_dir):
        mapping = CallTopDirs(levels=2)
        ca = EventLog.from_source(fig1_dir, cids={"a"})
        cb = EventLog.from_source(fig1_dir, cids={"b"})
        ca.apply_mapping_fn(mapping)
        cb.apply_mapping_fn(mapping)
        cx = ca | cb
        assert cx.mapping is mapping
        assert "read:/etc/passwd" in cx.activities()

    def test_union_different_mappings_drops_mapping(self, fig1_dir):
        ca = EventLog.from_source(fig1_dir, cids={"a"})
        cb = EventLog.from_source(fig1_dir, cids={"b"})
        ca.apply_mapping_fn(CallTopDirs(levels=2))
        cb.apply_mapping_fn(CallOnly())
        assert (ca | cb).mapping is None


class TestClockShifting:
    def test_uniform_shift_preserves_everything(self, fig1_dir):
        from repro.core.statistics import IOStatistics
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        shifted = log.with_shifted_host_clocks({"host1": 5_000_000})
        from repro.core.dfg import DFG
        assert DFG(shifted) == DFG(log)
        before = IOStatistics(log)
        after = IOStatistics(shifted)
        for activity in before.activities():
            assert after[activity].max_concurrency == \
                before[activity].max_concurrency
            assert after[activity].relative_duration == \
                pytest.approx(before[activity].relative_duration)

    def test_unknown_host_is_noop(self, fig1_dir):
        import numpy as np
        log = EventLog.from_source(fig1_dir)
        shifted = log.with_shifted_host_clocks({"ghost": 999})
        assert np.array_equal(shifted.frame.column("start"),
                              log.frame.column("start"))

    def test_skew_changes_max_concurrency_only(self, tmp_path):
        """Two hosts with identical timestamps overlap (mc=2); skewing
        one host past the other's events removes the overlap, while
        the DFG and durations stay fixed — the paper's Sec. IV-B
        sensitivity statement, made executable."""
        from repro.core.dfg import DFG
        from repro.core.statistics import IOStatistics
        line = "1  00:00:00.000100 read(3</f>, ..., 10) = 10 <0.000050>\n"
        (tmp_path / "x_h1_1.st").write_text(line)
        (tmp_path / "x_h2_2.st").write_text(line)
        log = EventLog.from_source(tmp_path)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        base_stats = IOStatistics(log)
        assert base_stats["read:/f"].max_concurrency == 2
        skewed = log.with_shifted_host_clocks({"h2": 1_000_000})
        skewed_stats = IOStatistics(skewed)
        assert skewed_stats["read:/f"].max_concurrency == 1
        assert DFG(skewed) == DFG(log)
        assert skewed_stats["read:/f"].relative_duration == \
            base_stats["read:/f"].relative_duration

"""Event-log partitioning for Sec. IV-C comparisons."""

import pytest

from repro._util.errors import PartitionError
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.partition import (
    PartitionEL,
    partition_by_cid,
    partition_by_predicate,
)


@pytest.fixture()
def log(fig1_dir) -> EventLog:
    return EventLog.from_source(fig1_dir)


class TestPartitionByCid:
    def test_basic_split(self, log):
        green, red = partition_by_cid(log, ["a"])
        assert green.cids() == ["a"]
        assert red.cids() == ["b"]
        assert green.n_events == 24
        assert red.n_events == 51

    def test_mutually_exclusive_and_covering(self, log):
        green, red = partition_by_cid(log, ["a"])
        assert green.n_events + red.n_events == log.n_events
        assert not set(green.case_ids()) & set(red.case_ids())

    def test_explicit_red(self, log):
        green, red = partition_by_cid(log, ["a"], ["b"])
        assert red.cids() == ["b"]

    def test_unknown_green_rejected(self, log):
        with pytest.raises(PartitionError):
            partition_by_cid(log, ["zzz"])

    def test_overlapping_sets_rejected(self, log):
        with pytest.raises(PartitionError):
            partition_by_cid(log, ["a"], ["a"])

    def test_all_cids_green_rejected(self, log):
        with pytest.raises(PartitionError):
            partition_by_cid(log, ["a", "b"])

    def test_mapping_survives_partition(self, log):
        log.apply_mapping_fn(CallTopDirs(levels=2))
        green, red = partition_by_cid(log, ["a"])
        assert green.mapping is log.mapping
        assert "read:/usr/lib" in green.activities()
        assert "read:/etc/passwd" in red.activities()


class TestPartitionByPredicate:
    def test_case_id_predicate(self, log):
        green, red = partition_by_predicate(
            log, lambda case_id: case_id.endswith("9042"))
        assert green.case_ids() == ["a9042"]
        assert red.n_cases == 5

    def test_empty_partition_rejected(self, log):
        with pytest.raises(PartitionError):
            partition_by_predicate(log, lambda case_id: True)
        with pytest.raises(PartitionError):
            partition_by_predicate(log, lambda case_id: False)


class TestPartitionEL:
    def test_implicit_two_cid_split(self, log):
        # Paper's Fig. 6 step 5b: PartitionEL(event_log).
        green, red = PartitionEL(log)
        assert green.cids() == ["a"]  # lexicographically first → green
        assert red.cids() == ["b"]

    def test_explicit_green(self, log):
        green, red = PartitionEL(log, ["b"])
        assert green.cids() == ["b"]
        assert red.cids() == ["a"]

    def test_predicate_form(self, log):
        green, red = PartitionEL(
            log, predicate=lambda case_id: case_id.startswith("a"))
        assert green.n_events == 24

    def test_both_forms_rejected(self, log):
        with pytest.raises(PartitionError):
            PartitionEL(log, ["a"], predicate=lambda c: True)

    def test_implicit_needs_exactly_two_cids(self, log):
        only_a = log.filtered_cids(["a"])
        with pytest.raises(PartitionError):
            PartitionEL(only_a)

"""The event record (Eq. 1) and its uniqueness requirement."""

import pytest

from repro.core.event import Event, check_event_uniqueness


def make_event(**overrides) -> Event:
    base = dict(cid="a", host="host1", rid=9042, pid=9054, call="read",
                start=1000, dur=203, fp="/usr/lib/libc.so.6", size=832)
    base.update(overrides)
    return Event(**base)


class TestAccess:
    def test_attribute_access(self):
        event = make_event()
        assert event.call == "read"
        assert event.fp == "/usr/lib/libc.so.6"

    def test_item_access_pandas_style(self):
        # The paper's mapping functions do event['fp'] (Fig. 6).
        event = make_event()
        assert event["fp"] == "/usr/lib/libc.so.6"
        assert event["call"] == "read"
        assert event["size"] == 832

    def test_item_access_unknown_key(self):
        with pytest.raises(KeyError):
            make_event()["nope"]

    def test_keys_in_eq1_order(self):
        assert make_event().keys() == (
            "cid", "host", "rid", "pid", "call", "start", "dur", "fp",
            "size")

    def test_case_id(self):
        assert make_event().case_id == "a9042"


class TestDerived:
    def test_end(self):
        assert make_event(start=100, dur=50).end == 150

    def test_end_none_without_dur(self):
        assert make_event(dur=None).end is None

    def test_data_rate_eq11(self):
        # dr(e) = size / dur: 832 B / 203 µs.
        event = make_event()
        assert event.data_rate == pytest.approx(832 / 203e-6)

    def test_data_rate_none_cases(self):
        assert make_event(size=None).data_rate is None
        assert make_event(dur=None).data_rate is None
        assert make_event(dur=0).data_rate is None


class TestUniqueness:
    def test_identity_tuple(self):
        assert make_event().identity() == (
            "a", "host1", 9042, 9054, "read", 1000, 203,
            "/usr/lib/libc.so.6", 832)

    def test_no_duplicates(self):
        events = [make_event(pid=1), make_event(pid=2)]
        assert check_event_uniqueness(events) == []

    def test_duplicates_detected(self):
        """The paper's no-``-f`` scenario: identical tuples from two
        physical calls (Sec. IV) must be flagged."""
        events = [make_event(), make_event()]
        duplicates = check_event_uniqueness(events)
        assert len(duplicates) == 1
        assert duplicates[0] == make_event().identity()

    def test_differing_pid_resolves_duplicate(self):
        events = [make_event(pid=1), make_event(pid=1)]
        assert len(check_event_uniqueness(events)) == 1
        events = [make_event(pid=1), make_event(pid=2)]
        assert check_event_uniqueness(events) == []

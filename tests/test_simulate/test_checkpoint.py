"""The checkpoint/restart workload (the paper's future-work pattern)."""

import pytest

from repro._util.errors import SimulationError
from repro.core.analysis import dominant_path, find_cycles
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.statistics import IOStatistics
from repro.simulate.strace_writer import write_trace_files
from repro.simulate.workloads.checkpoint import (
    CheckpointConfig,
    simulate_checkpoint,
)


@pytest.fixture(scope="module")
def result():
    return simulate_checkpoint(CheckpointConfig(
        ranks=8, ranks_per_node=4, steps=3))


@pytest.fixture(scope="module")
def mapped_log(result, tmp_path_factory):
    directory = tmp_path_factory.mktemp("ckpt")
    write_trace_files(result.recorders, directory)
    log = EventLog.from_source(directory)
    log.apply_mapping_fn(CallTopDirs(levels=4))
    return log


class TestConfig:
    def test_shard_paths_fpp(self):
        cfg = CheckpointConfig()
        assert cfg.shard_path(2, 5) == \
            "/p/scratch/app/ckpt/ckpt_0002/shard.00005"

    def test_shard_paths_shared(self):
        cfg = CheckpointConfig(shared_file=True)
        assert cfg.shard_path(1, 5) == \
            "/p/scratch/app/ckpt/ckpt_0001/shared"
        assert cfg.shard_offset(2, 3) == \
            2 * cfg.shard_bytes + 3 * cfg.transfer_bytes

    def test_invalid_granularity_rejected(self):
        with pytest.raises(SimulationError):
            CheckpointConfig(shard_bytes=10, transfer_bytes=3)


class TestWorkloadShape:
    def test_syscall_budget(self, result):
        cfg = result.config
        per_shard = cfg.transfers_per_shard
        # Per rank: restart (open + reads + close) +
        # steps × (open + writes + fsync + close); rank 0 adds
        # steps × (open + write + close) manifests.
        expected = cfg.ranks * (
            (2 + per_shard)
            + cfg.steps * (3 + per_shard)) + cfg.steps * 3
        assert result.total_syscalls() == expected

    def test_all_ranks_complete(self, result):
        assert result.sim.all_done()

    def test_determinism(self):
        sig = lambda res: [
            tuple((r.call, r.start_us) for r in rec.records)
            for rec in res.recorders]
        one = simulate_checkpoint(CheckpointConfig(ranks=4,
                                                   ranks_per_node=2))
        two = simulate_checkpoint(CheckpointConfig(ranks=4,
                                                   ranks_per_node=2))
        assert sig(one) == sig(two)

    def test_manifest_only_from_rank_zero(self, result):
        for recorder in result.recorders[1:]:
            assert not any("manifest" in (r.path or "")
                           for r in recorder.records)
        rank0 = result.recorders[0]
        manifests = [r for r in rank0.records
                     if "manifest" in (r.path or "")]
        assert len(manifests) == 3 * result.config.steps  # open/write/close


class TestDfgStructure:
    def test_checkpoint_cycle_found(self, mapped_log):
        """The periodic burst shows up as a cycle through the
        open→write→close nodes — the structure analysis target."""
        cycles = find_cycles(DFG(mapped_log))
        assert any(
            {"openat:/p/scratch/app/ckpt", "write:/p/scratch/app/ckpt",
             "close:/p/scratch/app/ckpt"} <= set(c)
            for c in cycles)

    def test_dominant_path_starts_with_restart(self, mapped_log):
        path = dominant_path(DFG(mapped_log))
        # Restart read precedes the first checkpoint write.
        restart_read = "read:/p/scratch/app/ckpt-prev"
        ckpt_write = "write:/p/scratch/app/ckpt"
        assert restart_read in path
        assert ckpt_write in path
        assert path.index(restart_read) < path.index(ckpt_write)

    def test_write_volume(self, mapped_log):
        stats = IOStatistics(mapped_log)
        cfg = CheckpointConfig(ranks=8, ranks_per_node=4, steps=3)
        shard_total = cfg.ranks * cfg.steps * cfg.shard_bytes
        writes = stats["write:/p/scratch/app/ckpt"]
        assert writes.total_bytes == shard_total + \
            cfg.steps * 4096  # + manifests

    def test_restart_reads_bypass_cache(self, mapped_log):
        stats = IOStatistics(mapped_log)
        reads = stats["read:/p/scratch/app/ckpt-prev"]
        # Storage-speed, not DRAM-speed, reads.
        assert reads.process_data_rate < 7000e6

    def test_shared_mode_contention(self):
        fpp = simulate_checkpoint(CheckpointConfig(
            ranks=8, ranks_per_node=4, steps=2, seed=1))
        shared = simulate_checkpoint(CheckpointConfig(
            ranks=8, ranks_per_node=4, steps=2, shared_file=True,
            seed=1))
        # Shared checkpoint files resurrect the SSF token contention.
        assert shared.makespan_us > fpp.makespan_us
        assert shared.fs.conflict_stalls > 0
        assert fpp.fs.conflict_stalls == 0

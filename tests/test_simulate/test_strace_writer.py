"""strace text emission: formats, -e filtering, clock skew."""

import numpy as np
import pytest

from repro.simulate.recording import ProcessRecorder, SyscallRecord
from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    EXPERIMENT_B_CALLS,
    format_record,
    format_record_split,
    write_strace_text,
    write_trace_files,
)
from repro.strace.parser import parse_line


def record(**overrides) -> SyscallRecord:
    base = dict(pid=9054, call="read", start_us=32154153994, dur_us=203,
                path="/usr/lib/x86_64-linux-gnu/libselinux.so.1",
                fd=3, size=832, requested=832)
    base.update(overrides)
    return SyscallRecord(**base)


class TestFormatRecord:
    def test_read_matches_paper_fig2a_format(self):
        line = format_record(record())
        assert line == (
            "9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/"
            "libselinux.so.1>, ..., 832) = 832 <0.000203>")

    def test_every_format_parses_back(self):
        records = [
            record(),
            record(call="write", path="/dev/pts/7", fd=1, size=50,
                   requested=50),
            record(call="pwrite64", args_hint="16777216",
                   size=1 << 20, requested=1 << 20),
            record(call="openat", ret_fd=3,
                   args_hint="O_RDONLY|O_CLOEXEC", size=None,
                   requested=None),
            record(call="openat", ret_fd=None, size=None,
                   requested=None, args_hint="O_RDONLY"),
            record(call="lseek", args_hint="4096", retval=4096,
                   size=None, requested=None),
            record(call="fsync", size=None, requested=None),
            record(call="close", size=None, requested=None),
        ]
        for rec in records:
            parsed = parse_line(format_record(rec))
            assert parsed is not None
            assert parsed.call == rec.call
            assert parsed.pid == rec.pid

    def test_clock_offset_shifts_stamp(self):
        base = format_record(record())
        shifted = format_record(record(), clock_offset_us=1_000_000)
        assert "08:55:54" in base
        assert "08:55:55" in shifted

    def test_split_form_is_fig2c_shaped(self):
        first, second = format_record_split(record())
        assert first.endswith("<unfinished ...>")
        assert "<... read resumed>" in second
        assert second.endswith("<0.000203>")


class TestWriteText:
    def test_lines_time_ordered(self):
        recorder = ProcessRecorder(cid="x", host="h", rid=1, pid=5)
        recorder.record(call="read", start_us=300, dur_us=1, path="/b",
                        fd=3, size=1, requested=1)
        recorder.record(call="read", start_us=100, dur_us=1, path="/a",
                        fd=3, size=1, requested=1)
        text = write_strace_text(recorder)
        lines = text.splitlines()
        assert "/a" in lines[0]
        assert "/b" in lines[1]

    def test_call_filter_sets(self):
        assert "lseek" not in EXPERIMENT_A_CALLS
        assert "lseek" in EXPERIMENT_B_CALLS
        assert "fsync" not in EXPERIMENT_B_CALLS

    def test_empty_recorder(self):
        recorder = ProcessRecorder(cid="x", host="h", rid=1, pid=5)
        assert write_strace_text(recorder) == ""

    def test_unfinished_lines_interleave_correctly(self):
        recorder = ProcessRecorder(cid="x", host="h", rid=1, pid=5)
        recorder.record(call="read", start_us=100, dur_us=500, path="/a",
                        fd=3, size=1, requested=1)
        recorder.record(call="read", start_us=700, dur_us=10, path="/b",
                        fd=3, size=1, requested=1)
        text = write_strace_text(recorder, unfinished_probability=1.0,
                                 rng=np.random.default_rng(0))
        lines = text.splitlines()
        assert len(lines) == 4
        assert "unfinished" in lines[0]
        assert "resumed" in lines[1]


class TestWriteFiles:
    def test_filenames_follow_convention(self, tmp_path):
        recorders = [
            ProcessRecorder(cid="a", host="host1", rid=9042, pid=9054),
            ProcessRecorder(cid="a", host="host2", rid=9043, pid=9055),
        ]
        for recorder in recorders:
            recorder.record(call="read", start_us=10, dur_us=1,
                            path="/x", fd=3, size=1, requested=1)
        paths = write_trace_files(recorders, tmp_path)
        assert sorted(p.name for p in paths) == [
            "a_host1_9042.st", "a_host2_9043.st"]

    def test_per_host_clock_offsets(self, tmp_path):
        recorders = [
            ProcessRecorder(cid="a", host="host1", rid=1, pid=1),
            ProcessRecorder(cid="a", host="host2", rid=2, pid=2),
        ]
        for recorder in recorders:
            recorder.record(call="read", start_us=0, dur_us=1,
                            path="/x", fd=3, size=1, requested=1)
        paths = write_trace_files(
            recorders, tmp_path,
            host_clock_offsets={"host2": 5_000_000})
        text1 = (tmp_path / "a_host1_1.st").read_text()
        text2 = (tmp_path / "a_host2_2.st").read_text()
        assert "00:00:00.000000" in text1
        assert "00:00:05.000000" in text2

    def test_creates_directory(self, tmp_path):
        recorder = ProcessRecorder(cid="a", host="h", rid=1, pid=1)
        recorder.record(call="read", start_us=0, dur_us=1, path="/x",
                        fd=3, size=1, requested=1)
        out = tmp_path / "deep" / "dir"
        write_trace_files([recorder], out)
        assert (out / "a_h_1.st").exists()

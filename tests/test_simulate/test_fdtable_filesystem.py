"""Descriptor tables and the GPFS-like filesystem model."""

import numpy as np
import pytest

from repro._util.errors import SimulationError
from repro.simulate.fdtable import FdTable
from repro.simulate.filesystem import FSConfig, ParallelFS
from repro.simulate.kernel import Simulator


class TestFdTable:
    def test_allocation_starts_at_three(self):
        table = FdTable()
        assert table.allocate("/a") == 3
        assert table.allocate("/b") == 4

    def test_lowest_free_reused(self):
        """The POSIX rule behind Fig. 2b's fd numbering."""
        table = FdTable()
        fd_a = table.allocate("/a")
        fd_b = table.allocate("/b")
        table.release(fd_a)
        assert table.allocate("/c") == fd_a
        assert table.path_of(fd_b) == "/b"

    def test_path_lookup(self):
        table = FdTable()
        fd = table.allocate("/etc/passwd")
        assert table.path_of(fd) == "/etc/passwd"

    def test_release_returns_path(self):
        table = FdTable()
        fd = table.allocate("/x")
        assert table.release(fd) == "/x"
        assert not table.is_open(fd)

    def test_bad_fd_rejected(self):
        table = FdTable()
        with pytest.raises(SimulationError):
            table.path_of(3)
        with pytest.raises(SimulationError):
            table.release(3)

    def test_open_fds_sorted(self):
        table = FdTable()
        for path in "/a", "/b", "/c":
            table.allocate(path)
        assert table.open_fds() == [3, 4, 5]
        assert len(table) == 3


def run_fs(generators, config=None):
    """Drive filesystem op generators; returns (durations, fs)."""
    sim = Simulator()
    fs = ParallelFS(sim, config or FSConfig(),
                    rng=np.random.default_rng(7))
    durations = {}

    def wrap(name, gen):
        start = sim.now

        def proc():
            yield from gen
            durations[name] = sim.now - start

        sim.process(proc())

    for name, gen in generators(fs, sim):
        wrap(name, gen)
    sim.run()
    return durations, fs


class TestOpen:
    def test_create_then_open_costs(self):
        def gens(fs, sim):
            yield "create", fs.open("h1", 0, "/p/s/f", create=True)

        durations, fs = run_fs(gens)
        assert durations["create"] > 0
        assert fs.files["/p/s/f"].exists

    def test_shared_create_contention(self):
        """96-rank SSF mechanism in miniature: the 2nd+ openers of one
        file pay the revocation; FPP-style distinct files do not."""
        def shared(fs, sim):
            for rank in range(4):
                yield f"r{rank}", fs.open("h1", rank, "/p/s/shared",
                                          create=True)

        def separate(fs, sim):
            for rank in range(4):
                yield f"r{rank}", fs.open("h1", rank, f"/p/s/own.{rank}",
                                          create=True)

        shared_durations, _ = run_fs(shared)
        separate_durations, _ = run_fs(separate)
        assert sum(shared_durations.values()) > \
            5 * sum(separate_durations.values())

    def test_reopen_existing_cheaper_than_create(self):
        config = FSConfig(jitter_sigma=0.0)

        def gens(fs, sim):
            yield "create", fs.open("h1", 0, "/p/s/f", create=True)

        durations1, fs = run_fs(gens, config)

        def gens2(fs, sim):
            fs._state("/p/s/f").exists = True
            yield "open", fs.open("h1", 0, "/p/s/f", create=False)

        durations2, _ = run_fs(gens2, config)
        assert durations2["open"] < durations1["create"]


class TestWrite:
    def test_write_requires_existing_file(self):
        def gens(fs, sim):
            yield "w", fs.write("h1", 0, "/nope", 0, 100)

        with pytest.raises(SimulationError):
            run_fs(gens)

    def test_write_marks_cache_and_dirty(self):
        def gens(fs, sim):
            fs._state("/p/s/f").exists = True
            yield "w", fs.write("h1", 0, "/p/s/f", 0, 1 << 20)

        _, fs = run_fs(gens)
        assert ("/p/s/f", 0) in fs.page_cache["h1"]
        assert fs.files["/p/s/f"].dirty_by_rank[0] == 1 << 20

    def test_conflict_stalls_only_on_shared_files(self):
        config = FSConfig(write_conflict_probability=1.0,
                          jitter_sigma=0.0)

        def solo(fs, sim):
            fs._state("/f").exists = True
            for i in range(5):
                yield f"w{i}", fs.write("h1", 0, "/f", i << 20, 1 << 20)

        _, fs = run_fs(solo, config)
        assert fs.conflict_stalls == 0

        def shared(fs, sim):
            fs._state("/f").exists = True
            fs._state("/f").writer_tokens.update({0, 1})
            for i in range(5):
                yield f"w{i}", fs.write("h1", 0, "/f", i << 20, 1 << 20)

        _, fs = run_fs(shared, config)
        assert fs.conflict_stalls == 5


class TestRead:
    def test_cache_hit_faster_than_storage(self):
        config = FSConfig(jitter_sigma=0.0)

        def gens(fs, sim):
            fs._state("/f").exists = True

            def sequence():
                yield from fs.write("h1", 0, "/f", 0, 1 << 20)
                cold_start = sim.now
                yield from fs.read("h2", 1, "/f", 0, 1 << 20)
                cold = sim.now - cold_start
                warm_start = sim.now
                yield from fs.read("h2", 1, "/f", 0, 1 << 20)
                warm = sim.now - warm_start
                assert warm < cold

            yield "seq", sequence()

        run_fs(gens, config)

    def test_bypass_cache_forces_storage_path(self):
        config = FSConfig(jitter_sigma=0.0)
        times = {}

        def gens(fs, sim):
            fs._state("/f").exists = True

            def sequence():
                yield from fs.write("h1", 0, "/f", 0, 1 << 20)
                t0 = sim.now
                yield from fs.read("h1", 0, "/f", 0, 1 << 20)
                times["cached"] = sim.now - t0
                t0 = sim.now
                yield from fs.read("h1", 0, "/f", 0, 1 << 20,
                                   bypass_cache=True)
                times["bypassed"] = sim.now - t0

            yield "seq", sequence()

        run_fs(gens, config)
        assert times["bypassed"] > times["cached"]

    def test_read_of_missing_file_rejected(self):
        def gens(fs, sim):
            yield "r", fs.read("h1", 0, "/nope", 0, 10)

        with pytest.raises(SimulationError):
            run_fs(gens)


class TestFsyncCloseLseek:
    def test_fsync_scales_with_dirty_bytes(self):
        config = FSConfig(jitter_sigma=0.0)
        times = {}

        def gens(fs, sim):
            fs._state("/f").exists = True

            def sequence():
                yield from fs.write("h1", 0, "/f", 0, 64 << 20)
                t0 = sim.now
                yield from fs.fsync("h1", 0, "/f")
                times["big"] = sim.now - t0
                t0 = sim.now
                yield from fs.fsync("h1", 0, "/f")  # nothing dirty now
                times["empty"] = sim.now - t0

            yield "seq", sequence()

        run_fs(gens, config)
        assert times["big"] > 10 * times["empty"]

    def test_lseek_and_close_are_cheap(self):
        config = FSConfig(jitter_sigma=0.0)

        def gens(fs, sim):
            fs._state("/f").exists = True
            fs._state("/f").open_count = 1
            yield "lseek", fs.lseek()
            yield "close", fs.close("h1", 0, "/f")

        durations, _ = run_fs(gens, config)
        assert durations["lseek"] < 100
        assert durations["close"] < 100


def test_determinism_for_fixed_seed():
    def scenario():
        sim = Simulator()
        fs = ParallelFS(sim, FSConfig(seed=5),
                        rng=np.random.default_rng(5))
        result = []

        def proc():
            yield from fs.open("h1", 0, "/f", create=True)
            yield from fs.write("h1", 0, "/f", 0, 1 << 20)
            result.append(sim.now)

        sim.process(proc())
        sim.run()
        return result[0]

    assert scenario() == scenario()

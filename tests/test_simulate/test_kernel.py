"""The discrete-event kernel: timeouts, processes, composition."""

import pytest

from repro._util.errors import SimulationError
from repro.simulate.kernel import SimEvent, Simulator


class TestTimeout:
    def test_advances_clock(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(100)
            fired.append(sim.now)
            yield sim.timeout(50)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [100, 150]
        assert sim.now == 150

    def test_zero_delay_allowed(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_value_delivery(self):
        sim = Simulator()
        received = []

        def proc():
            value = yield sim.timeout(10, value="payload")
            received.append(value)

        sim.process(proc())
        sim.run()
        assert received == ["payload"]


class TestEvents:
    def test_manual_succeed_wakes_waiter(self):
        sim = Simulator()
        gate = sim.event()
        log = []

        def waiter():
            value = yield gate
            log.append((sim.now, value))

        def trigger():
            yield sim.timeout(42)
            gate.succeed("go")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert log == [(42, "go")]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_waiting_on_processed_event_resumes(self):
        """Yielding an already-fired event must not hang."""
        sim = Simulator()
        gate = sim.event()
        gate.succeed("early")
        results = []

        def late_waiter():
            yield sim.timeout(10)
            value = yield gate
            results.append(value)

        sim.process(late_waiter())
        sim.run()
        assert results == ["early"]


class TestProcesses:
    def test_return_value(self):
        sim = Simulator()

        def child():
            yield sim.timeout(5)
            return 99

        def parent(results):
            value = yield sim.process(child())
            results.append((sim.now, value))

        results = []
        sim.process(parent(results))
        sim.run()
        assert results == [(5, 99)]

    def test_yielding_non_event_rejected(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="yielded"):
            sim.run()

    def test_all_done(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(10)

        sim.process(proc())
        assert not sim.all_done()
        sim.run()
        assert sim.all_done()

    def test_many_interleaved_processes(self):
        sim = Simulator()
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append(name)
            yield sim.timeout(delay)
            order.append(name)

        sim.process(proc("a", 10))
        sim.process(proc("b", 3))
        sim.run()
        assert order == ["b", "b", "a", "a"]
        assert sim.now == 20


class TestRun:
    def test_until_bound(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(100)
            fired.append("late")

        sim.process(proc())
        sim.run(until=50)
        assert fired == []
        assert sim.now == 50
        sim.run()
        assert fired == ["late"]

    def test_max_steps_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(1)

        sim.process(forever())
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_steps=100)

    def test_deterministic_fifo_at_equal_times(self):
        sim = Simulator()
        order = []

        def proc(name):
            yield sim.timeout(10)
            order.append(name)

        for name in "abc":
            sim.process(proc(name))
        sim.run()
        assert order == ["a", "b", "c"]

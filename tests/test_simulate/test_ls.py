"""The ls / ls -l example workload (Fig. 1-5 fidelity)."""

import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.statistics import IOStatistics
from repro.simulate.workloads.ls import (
    LS_L_TEMPLATE,
    LS_TEMPLATE,
    LsConfig,
    generate_fig1_traces,
    simulate_ls,
)
from repro.strace.naming import parse_trace_filename


class TestTemplates:
    def test_fig2a_event_count(self):
        assert len(LS_TEMPLATE) == 8

    def test_fig2b_event_count(self):
        assert len(LS_L_TEMPLATE) == 17

    def test_fig2a_contents(self):
        calls = [t[0] for t in LS_TEMPLATE]
        assert calls == ["read"] * 7 + ["write"]
        assert LS_TEMPLATE[0][1].endswith("libselinux.so.1")
        assert LS_TEMPLATE[-1][1] == "/dev/pts/7"

    def test_fig2b_fd_numbers_match_figure(self):
        # nsswitch/passwd/group on fd 4; zoneinfo back on fd 3.
        by_path = {t[1]: t[2] for t in LS_L_TEMPLATE}
        assert by_path["/etc/nsswitch.conf"] == 4
        assert by_path["/etc/passwd"] == 4
        assert by_path["/usr/share/zoneinfo/Europe/Berlin"] == 3


class TestSimulateLs:
    def test_default_rids_match_paper(self):
        recorders = simulate_ls()
        assert [r.rid for r in recorders] == [9042, 9043, 9045]
        assert all(r.pid != r.rid for r in recorders)  # forked child

    def test_identical_logical_traces(self):
        """All ranks replay the same template → one trace variant."""
        recorders = simulate_ls()
        signatures = {
            tuple((rec.call, rec.path, rec.size) for rec in r.records)
            for r in recorders}
        assert len(signatures) == 1

    def test_stagger_applied(self):
        recorders = simulate_ls(LsConfig(stagger_us=150))
        first_starts = [r.records[0].start_us for r in recorders]
        assert first_starts[1] - first_starts[0] == 150
        assert first_starts[2] - first_starts[1] == 150


class TestGeneratedTraces:
    def test_six_files_with_paper_names(self, ls_sim_dir):
        names = sorted(p.name for p in ls_sim_dir.iterdir())
        assert names == [
            "a_host1_9042.st", "a_host1_9043.st", "a_host1_9045.st",
            "b_host1_9157.st", "b_host1_9158.st", "b_host1_9160.st"]
        for name in names:
            parse_trace_filename(name)  # all follow the convention

    def test_fig3b_edge_counts_from_simulated_traces(self, ls_sim_dir):
        log = EventLog.from_source(ls_sim_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        dfg = DFG(log)
        assert dfg.edge_count("read:/usr/lib", "read:/usr/lib") == 6
        assert dfg.edge_count(dfg.start_node(), "read:/usr/lib") == 3
        assert dfg.edge_count("read:/etc/locale.alias",
                              "write:/dev/pts") == 3

    def test_fig5_max_concurrency_two(self, ls_sim_dir):
        """The headline Fig. 5 claim: mc(read:/usr/lib, Cb) = 2."""
        log = EventLog.from_source(ls_sim_dir, cids={"b"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        assert stats["read:/usr/lib"].max_concurrency == 2

    def test_ls_l_run_starts_after_ls(self, ls_sim_dir):
        log_a = EventLog.from_source(ls_sim_dir, cids={"a"})
        log_b = EventLog.from_source(ls_sim_dir, cids={"b"})
        assert log_b.frame.column("start").min() > \
            log_a.frame.column("start").max()

    def test_bytes_match_template(self, ls_sim_dir):
        log = EventLog.from_source(ls_sim_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        assert stats["read:/usr/lib"].total_bytes == 3 * 3 * 832
        assert stats["write:/dev/pts"].total_bytes == 3 * 50

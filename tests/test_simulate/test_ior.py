"""The IOR workload: option model, syscall sequences, contention shape."""

import pytest

from repro._util.errors import SimulationError
from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    EXPERIMENT_B_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import IORConfig, simulate_ior


class TestConfig:
    def test_fig7_layout_offsets_ssf(self):
        """Fig. 7a: segment-major, one block per rank per segment."""
        cfg = IORConfig(ranks=4, ranks_per_node=2, segments=2)
        block, tsize = cfg.block_size, cfg.transfer_size
        assert cfg.write_offset(0, 0, 0) == 0
        assert cfg.write_offset(1, 0, 0) == block
        assert cfg.write_offset(0, 1, 0) == 4 * block
        assert cfg.write_offset(2, 1, 3) == 4 * block + 2 * block + 3 * tsize

    def test_fpp_layout_contiguous(self):
        cfg = IORConfig(ranks=4, ranks_per_node=2, segments=2,
                        file_per_process=True)
        assert cfg.write_offset(3, 1, 2) == \
            cfg.block_size + 2 * cfg.transfer_size

    def test_fpp_file_naming(self):
        cfg = IORConfig(file_per_process=True,
                        test_file="/p/scratch/fpp/test")
        assert cfg.file_of(7) == "/p/scratch/fpp/test.00000007"
        ssf = IORConfig(test_file="/p/scratch/ssf/test")
        assert ssf.file_of(7) == "/p/scratch/ssf/test"

    def test_reorder_tasks_shifts_by_node(self):
        """-C: read data written by a rank on the neighboring node."""
        cfg = IORConfig(ranks=8, ranks_per_node=4)
        assert cfg.read_source_rank(0) == 4
        assert cfg.read_source_rank(5) == 1  # wraps
        plain = IORConfig(ranks=8, ranks_per_node=4, reorder_tasks=False)
        assert plain.read_source_rank(0) == 0

    def test_host_placement(self):
        cfg = IORConfig(ranks=8, ranks_per_node=4)
        assert cfg.host_of(0) == "node01"
        assert cfg.host_of(3) == "node01"
        assert cfg.host_of(4) == "node02"
        assert cfg.n_nodes == 2

    def test_invalid_api_rejected(self):
        with pytest.raises(SimulationError):
            IORConfig(api="hdf5")

    def test_block_not_multiple_rejected(self):
        with pytest.raises(SimulationError):
            IORConfig(transfer_size=3, block_size=10)


@pytest.fixture(scope="module")
def tiny_posix():
    return simulate_ior(IORConfig(
        ranks=4, ranks_per_node=2, segments=1, cid="p",
        test_file="/p/scratch/ssf/test", seed=1))


@pytest.fixture(scope="module")
def tiny_mpiio():
    return simulate_ior(IORConfig(
        ranks=4, ranks_per_node=2, segments=1, cid="m", api="mpiio",
        test_file="/p/scratch/ssf/test", seed=2))


class TestSyscallSequences:
    def test_posix_lseek_before_every_transfer(self, tiny_posix):
        """The Fig. 9 red pattern: lseek precedes each write and read."""
        recorder = tiny_posix.recorders[0]
        scratch = [r for r in recorder.records
                   if r.path and "/p/scratch" in r.path]
        for i, rec in enumerate(scratch):
            if rec.call in ("write", "read"):
                assert scratch[i - 1].call == "lseek", (
                    f"transfer #{i} not preceded by lseek")

    def test_mpiio_uses_pwrite_pread(self, tiny_mpiio):
        calls = {r.call for rec in tiny_mpiio.recorders
                 for r in rec.records if r.path and "scratch" in r.path}
        assert "pwrite64" in calls
        assert "pread64" in calls
        assert "write" not in calls
        assert "read" not in calls

    def test_mpiio_single_lseek_per_rank(self, tiny_mpiio):
        """Fig. 9: lseek:$SCRATCH stays a shared node with one probe
        lseek per MPI-IO rank."""
        for recorder in tiny_mpiio.recorders:
            lseeks = [r for r in recorder.records
                      if r.call == "lseek" and "/p/scratch" in
                      (r.path or "")]
            assert len(lseeks) == 1

    def test_transfer_counts(self, tiny_posix):
        cfg = tiny_posix.config
        per_rank = cfg.segments * cfg.transfers_per_block
        for recorder in tiny_posix.recorders:
            writes = [r for r in recorder.records if r.call == "write"
                      and "/p/scratch" in (r.path or "")]
            reads = [r for r in recorder.records if r.call == "read"
                     and "/p/scratch" in (r.path or "")]
            assert len(writes) == per_rank
            assert len(reads) == per_rank

    def test_single_open_per_rank(self, tiny_posix):
        """Fig. 8b shows exactly one openat per rank on $SCRATCH."""
        for recorder in tiny_posix.recorders:
            opens = [r for r in recorder.records if r.call == "openat"
                     and "/p/scratch" in (r.path or "")]
            assert len(opens) == 1
            assert opens[0].ret_fd is not None

    def test_fsync_present_but_filterable(self, tiny_posix, tmp_path):
        recorder = tiny_posix.recorders[0]
        assert any(r.call == "fsync" for r in recorder.records)
        paths = write_trace_files([recorder], tmp_path,
                                  trace_calls=EXPERIMENT_A_CALLS)
        assert "fsync" not in paths[0].read_text()

    def test_mpiio_fewer_syscalls(self, tiny_posix, tiny_mpiio):
        assert tiny_mpiio.total_syscalls() < tiny_posix.total_syscalls()

    def test_preamble_software_probes(self, tiny_posix):
        recorder = tiny_posix.recorders[0]
        probes = [r for r in recorder.records
                  if r.call == "openat" and "/p/software" in (r.path or "")
                  and r.ret_fd is None]
        assert len(probes) == tiny_posix.config.preamble_probes

    def test_node_local_writes(self, tiny_posix):
        recorder = tiny_posix.recorders[0]
        node_local = [r for r in recorder.records
                      if r.call == "write" and (r.path or "").startswith(
                          ("/dev/shm", "/tmp"))]
        assert len(node_local) == tiny_posix.config.node_local_writes


class TestContentionShape:
    def test_ssf_slower_than_fpp(self, small_ior_pair):
        ssf, fpp = small_ior_pair
        assert ssf.makespan_us > 2 * fpp.makespan_us

    def test_ssf_has_conflict_stalls_fpp_none(self, small_ior_pair):
        ssf, fpp = small_ior_pair
        assert ssf.fs.conflict_stalls > 0
        assert fpp.fs.conflict_stalls == 0

    def test_scratch_write_duration_dominates_in_ssf(self, small_ior_pair):
        ssf, _ = small_ior_pair
        sums = {}
        for recorder in ssf.recorders:
            for rec in recorder.records:
                if rec.path and "/p/scratch" in rec.path:
                    sums[rec.call] = sums.get(rec.call, 0) + rec.dur_us
        assert sums["openat"] > sums["read"]
        assert sums["write"] > sums["read"]

    def test_determinism(self):
        config = IORConfig(ranks=3, ranks_per_node=2, segments=1,
                           cid="d", seed=9)
        one = simulate_ior(config)
        two = simulate_ior(IORConfig(ranks=3, ranks_per_node=2,
                                     segments=1, cid="d", seed=9))
        sig = lambda res: [
            (r.rid, tuple((rec.call, rec.start_us, rec.dur_us)
                          for rec in r.records))
            for r in res.recorders]
        assert sig(one) == sig(two)

    def test_all_ranks_complete(self, small_ior_pair):
        ssf, fpp = small_ior_pair
        assert ssf.sim.all_done()
        assert fpp.sim.all_done()

"""FIFO resources and barriers."""

import pytest

from repro._util.errors import SimulationError
from repro.simulate.kernel import Simulator
from repro.simulate.resources import Barrier, Resource


class TestResource:
    def test_fifo_serialization(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        finish_times = {}

        def worker(name):
            yield from resource.use(10)
            finish_times[name] = sim.now

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert finish_times == {"a": 10, "b": 20, "c": 30}

    def test_capacity_parallelism(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finish_times = {}

        def worker(name):
            yield from resource.use(10)
            finish_times[name] = sim.now

        for name in "abcd":
            sim.process(worker(name))
        sim.run()
        # Two at a time: a,b finish at 10; c,d at 20.
        assert sorted(finish_times.values()) == [10, 10, 20, 20]

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        resource = Resource(sim)
        with pytest.raises(SimulationError):
            resource.release()

    def test_capacity_validated(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_peak_queue_tracked(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            yield from resource.use(5)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert resource.peak_queue == 3
        assert resource.total_acquired == 4

    def test_release_grants_to_longest_waiter(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(name, arrival):
            yield sim.timeout(arrival)
            grant = resource.acquire()
            yield grant
            order.append(name)
            yield sim.timeout(10)
            resource.release()

        sim.process(worker("first", 0))
        sim.process(worker("second", 1))
        sim.process(worker("third", 2))
        sim.run()
        assert order == ["first", "second", "third"]


class TestBarrier:
    def test_releases_all_at_last_arrival(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=3)
        release_times = {}

        def party(name, arrival):
            yield sim.timeout(arrival)
            yield barrier.wait()
            release_times[name] = sim.now

        sim.process(party("a", 5))
        sim.process(party("b", 20))
        sim.process(party("c", 11))
        sim.run()
        assert release_times == {"a": 20, "b": 20, "c": 20}
        assert barrier.generations == 1

    def test_reusable_across_phases(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=2)
        log = []

        def party(name):
            yield barrier.wait()
            log.append((name, 1, sim.now))
            yield sim.timeout(10 if name == "a" else 3)
            yield barrier.wait()
            log.append((name, 2, sim.now))

        sim.process(party("a"))
        sim.process(party("b"))
        sim.run()
        assert barrier.generations == 2
        phase2 = [entry for entry in log if entry[1] == 2]
        assert all(t == 10 for _, _, t in phase2)

    def test_single_party_barrier_trivial(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=1)

        def solo():
            yield barrier.wait()
            return sim.now

        p = sim.process(solo())
        sim.run()
        assert p.value == 0

    def test_parties_validated(self):
        with pytest.raises(SimulationError):
            Barrier(Simulator(), parties=0)

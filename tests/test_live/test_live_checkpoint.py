"""Checkpoint sidecars: kill the watcher, restart, same final DFG."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro._util.errors import ReproError
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallOnly, CallTopDirs
from repro.live.engine import LiveIngest

MAPPING = CallTopDirs(levels=2)


def batch_dfg(directory: Path) -> DFG:
    log = EventLog.from_source(directory, workers=1)
    return DFG(log.with_mapping(MAPPING))


def grow(directory: Path, filename: str, chunk: bytes) -> None:
    with open(directory / filename, "ab") as handle:
        handle.write(chunk)


class TestRestart:
    def test_restart_mid_directory_same_final_dfg(self, tmp_path,
                                                  ior_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        sidecar = tmp_path / "watch.ckpt.json"
        items = sorted(ior_file_bytes.items())

        engine = LiveIngest(trace_dir, checkpoint=sidecar)
        # First life: half of each of the first two files — offsets,
        # carries and (typically) in-flight unfinished calls all live
        # in the checkpoint.
        for name, content in items[:2]:
            grow(trace_dir, name, content[: len(content) // 2 + 13])
        engine.poll()
        engine.save_checkpoint()
        events_before = engine.total_events
        del engine

        # Second life: resumes from the sidecar, never re-reads the
        # consumed prefix.
        revived = LiveIngest(trace_dir, checkpoint=sidecar)
        assert revived.total_events == events_before
        offsets = {tail.path.name: tail.offset
                   for tail in revived._tails.values()}
        for name, content in items:
            grow(trace_dir, name,
                 content[offsets.get(name, 0):])
        revived.poll()
        revived.finalize()
        assert revived.snapshot_dfg() == batch_dfg(trace_dir)

    def test_restart_equals_uninterrupted_run(self, tmp_path,
                                              ior_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        sidecar = tmp_path / "ckpt.json"
        items = sorted(ior_file_bytes.items())

        straight = LiveIngest(trace_dir)
        interrupted = LiveIngest(trace_dir, checkpoint=sidecar)
        for step, (name, content) in enumerate(items):
            grow(trace_dir, name, content)
            straight.poll()
            interrupted.poll()
            interrupted.save_checkpoint()
            if step == 1:  # kill + revive mid-directory
                interrupted = LiveIngest(trace_dir, checkpoint=sidecar)
        straight.finalize()
        interrupted.finalize()
        assert interrupted.snapshot_dfg() == straight.snapshot_dfg()

    def test_checkpoint_is_json_and_atomic(self, tmp_path,
                                           ls_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        sidecar = tmp_path / "ckpt.json"
        name, content = next(iter(ls_file_bytes.items()))
        (trace_dir / name).write_bytes(content)
        engine = LiveIngest(trace_dir, checkpoint=sidecar)
        engine.poll()
        engine.save_checkpoint()
        state = json.loads(sidecar.read_text())
        assert state["version"] == 6
        assert state["files"][0]["path"] == name
        assert "stats" in state
        assert state["alerts"] == {"rules": {}, "history": []}
        assert not sidecar.with_name(sidecar.name + ".tmp").exists()

    def test_save_without_path_is_an_error(self, tmp_path):
        with pytest.raises(ReproError, match="no checkpoint path"):
            LiveIngest(tmp_path).save_checkpoint()


class TestGuards:
    def _checkpointed(self, tmp_path, ls_file_bytes) -> Path:
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        sidecar = tmp_path / "ckpt.json"
        name, content = next(iter(ls_file_bytes.items()))
        (trace_dir / name).write_bytes(content)
        engine = LiveIngest(trace_dir, checkpoint=sidecar)
        engine.poll()
        engine.save_checkpoint()
        return sidecar

    def test_mapping_mismatch_rejected(self, tmp_path, ls_file_bytes):
        sidecar = self._checkpointed(tmp_path, ls_file_bytes)
        with pytest.raises(ReproError, match="mapping"):
            LiveIngest(tmp_path / "traces", mapping=CallOnly(),
                       checkpoint=sidecar)

    def test_strictness_mismatch_rejected(self, tmp_path,
                                          ls_file_bytes):
        sidecar = self._checkpointed(tmp_path, ls_file_bytes)
        with pytest.raises(ReproError, match="strict"):
            LiveIngest(tmp_path / "traces", strict=False,
                       checkpoint=sidecar)

    def test_cids_filter_mismatch_rejected(self, tmp_path,
                                           ls_file_bytes):
        """Restarting with a different cid filter would fold cases the
        checkpointed graph never saw (or drop ones it has)."""
        sidecar = self._checkpointed(tmp_path, ls_file_bytes)
        with pytest.raises(ReproError, match="cids"):
            LiveIngest(tmp_path / "traces", cids={"a"},
                       checkpoint=sidecar)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        sidecar = tmp_path / "ckpt.json"
        sidecar.write_text("{not json")
        with pytest.raises(ReproError, match="corrupt"):
            LiveIngest(tmp_path, checkpoint=sidecar)

    def test_version_mismatch_rejected(self, tmp_path, ls_file_bytes):
        sidecar = self._checkpointed(tmp_path, ls_file_bytes)
        state = json.loads(sidecar.read_text())
        state["version"] = 999
        sidecar.write_text(json.dumps(state))
        with pytest.raises(ReproError, match="version"):
            LiveIngest(tmp_path / "traces", checkpoint=sidecar)

    def test_v1_sidecar_rejected_with_rebuild_hint(self, tmp_path,
                                                   ls_file_bytes):
        """Pre-statistics sidecars cannot be silently misread as v2 —
        the error says to delete and re-watch."""
        sidecar = self._checkpointed(tmp_path, ls_file_bytes)
        state = json.loads(sidecar.read_text())
        state["version"] = 1
        del state["stats"]
        sidecar.write_text(json.dumps(state))
        with pytest.raises(ReproError,
                           match="delete the sidecar"):
            LiveIngest(tmp_path / "traces", checkpoint=sidecar)

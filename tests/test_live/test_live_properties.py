"""The live-equals-batch invariant, under randomized growth schedules.

Hypothesis drives the adversary: it chooses how a finished trace
directory is revealed to the watcher — which files appear when, how
many bytes land per step (cut at *arbitrary* byte positions, so lines
and unfinished/resumed pairs split across polls), and where polls and
checkpoint kill/restart cycles happen. Whatever it picks, the final
live state must equal one-shot batch ingestion of the directory:
byte-identical event-log frames and pools, equal DFGs, equal merge
diagnostics.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.frame import COLUMN_ORDER
from repro.core.mapping import CallTopDirs
from repro.ingest.summary import cases_summary
from repro.live.engine import LiveIngest
from repro.strace.reader import read_trace_dir
from tests.strategies import growth_steps, replay_schedule

MAPPING = CallTopDirs(levels=2)

#: The shared schedule strategy (see ``tests/strategies.py``).
steps = growth_steps(n_files=4, max_steps=30)


def _replay(file_bytes: dict[str, bytes], schedule, *,
            live_dir: Path, engine: LiveIngest,
            restart_after: int | None = None,
            sidecar: Path | None = None) -> LiveIngest:
    """Grow ``live_dir`` per the schedule, polling along the way,
    optionally killing + reviving the engine at one step."""
    holder = {"engine": engine}

    def on_step(step_index: int) -> None:
        if restart_after is not None and step_index == restart_after:
            holder["engine"].save_checkpoint()
            holder["engine"] = LiveIngest(live_dir, checkpoint=sidecar)

    replay_schedule(file_bytes, schedule, live_dir=live_dir,
                    poll=lambda: holder["engine"].poll(),
                    on_step=on_step)
    holder["engine"].finalize()
    return holder["engine"]


def _assert_batch_identical(engine: LiveIngest, live_dir: Path) -> None:
    batch_log = EventLog.from_source(live_dir, workers=1)
    live_log = engine.snapshot_log()
    assert len(live_log.frame) == len(batch_log.frame)
    for column in COLUMN_ORDER:
        assert np.array_equal(live_log.frame.column(column),
                              batch_log.frame.column(column)), column
    assert engine.snapshot_dfg() == DFG(batch_log.with_mapping(MAPPING))
    assert cases_summary(engine.cases()) == \
        cases_summary(read_trace_dir(live_dir, workers=1))


class TestLiveEqualsBatch:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps)
    def test_random_growth_schedule(self, schedule, ior_file_bytes):
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch)
            engine = _replay(ior_file_bytes, schedule,
                             live_dir=live_dir,
                             engine=LiveIngest(live_dir))
            _assert_batch_identical(engine, live_dir)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps,
           restart_after=st.integers(min_value=0, max_value=29))
    def test_random_schedule_with_checkpoint_restart(self, schedule,
                                                     restart_after,
                                                     ior_file_bytes):
        """Kill + revive at a random schedule point: the final DFG
        still equals batch (records from the first life survive only
        in the graph, so the log assertion does not apply)."""
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch) / "traces"
            live_dir.mkdir()
            sidecar = Path(scratch) / "ckpt.json"
            engine = LiveIngest(live_dir, checkpoint=sidecar)
            engine = _replay(
                ior_file_bytes, schedule, live_dir=live_dir,
                engine=engine,
                restart_after=min(restart_after,
                                  max(len(schedule) - 1, 0)),
                sidecar=sidecar)
            batch_log = EventLog.from_source(live_dir, workers=1)
            assert engine.snapshot_dfg() == \
                DFG(batch_log.with_mapping(MAPPING))


class TestWorkloadByteIdentity:
    def test_ls_workload_fixed_schedule(self, ls_file_bytes):
        """Deterministic replay of a simulate workload: files revealed
        in interleaved thirds — the documented byte-identity anchor."""
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch)
            engine = LiveIngest(live_dir)
            names = sorted(ls_file_bytes)
            for third in range(3):
                for name in names:
                    content = ls_file_bytes[name]
                    cut = len(content) // 3
                    lo = third * cut
                    hi = (third + 1) * cut if third < 2 else len(content)
                    with open(live_dir / name, "ab") as handle:
                        handle.write(content[lo:hi])
                    engine.poll()
            engine.finalize()
            _assert_batch_identical(engine, live_dir)

    def test_ior_workload_fixed_schedule(self, ior_file_bytes):
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch)
            engine = LiveIngest(live_dir)
            for name, content in sorted(ior_file_bytes.items()):
                half = len(content) // 2 + 7
                with open(live_dir / name, "ab") as handle:
                    handle.write(content[:half])
                engine.poll()
                with open(live_dir / name, "ab") as handle:
                    handle.write(content[half:])
                engine.poll()
            engine.finalize()
            _assert_batch_identical(engine, live_dir)

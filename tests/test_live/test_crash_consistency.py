"""Checkpoint durability: a kill at *any* instant of a save leaves a
loadable sidecar.

``save_checkpoint`` writes a temp file, fsyncs it, ``os.replace``s it
over the target, then fsyncs the directory entry. These tests kill the
writer at every step boundary (by making the step raise, which aborts
the save exactly where a SIGKILL would) and assert the invariant: the
sidecar on disk is always one of the two *complete* states — never
torn, never empty — and a fresh engine restores from it. A stale
``.tmp`` left by a kill between write and replace is cleaned on load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro._util.errors import ReproError
from repro.live import checkpoint as checkpoint_module
from repro.live.engine import LiveIngest
from tests.faultinject import CHECKPOINT_KILL_POINTS, kill_checkpoint_at


def _grown(tmp_path: Path, ls_file_bytes) -> tuple[Path, Path]:
    """A trace dir with the first half of the files, checkpointed."""
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    items = sorted(ls_file_bytes.items())
    for name, content in items[:3]:
        (trace_dir / name).write_bytes(content)
    sidecar = tmp_path / "ckpt.json"
    engine = LiveIngest(trace_dir, checkpoint=sidecar)
    engine.poll()
    engine.save_checkpoint()
    for name, content in items[3:]:
        (trace_dir / name).write_bytes(content)
    return trace_dir, sidecar


#: Which os-level step of save_checkpoint the simulated kill hits
#: (re-exported so parametrized ids read locally; the harness lives in
#: ``tests/faultinject.py``).
KILL_POINTS = CHECKPOINT_KILL_POINTS
_kill_at = kill_checkpoint_at


class TestKillDuringSave:
    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_sidecar_is_always_a_complete_state(self, tmp_path,
                                                ls_file_bytes,
                                                monkeypatch, point):
        trace_dir, sidecar = _grown(tmp_path, ls_file_bytes)
        old_state = json.loads(sidecar.read_text())
        engine = LiveIngest(trace_dir, checkpoint=sidecar)
        engine.poll()  # absorb the new files
        new_state = checkpoint_module.engine_state(engine)
        with monkeypatch.context() as patched:
            _kill_at(patched, point)
            with pytest.raises(OSError):
                engine.save_checkpoint()
        # Invariant: the surviving sidecar parses and equals one of
        # the two complete states (which one depends on the point).
        survivor = json.loads(sidecar.read_text())
        assert survivor in (old_state, new_state)
        if point in ("temp_fsync", "replace"):
            assert survivor == old_state
        else:  # replace happened; only the dir fsync was lost
            assert survivor == new_state
        # And a fresh life restores from it without complaint.
        revived = LiveIngest(trace_dir, checkpoint=sidecar)
        assert revived.total_events == survivor["total_events"]

    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_next_save_recovers(self, tmp_path, ls_file_bytes,
                                monkeypatch, point):
        """After an aborted save, the *next* save (same process or a
        revived one) lands the full new state."""
        trace_dir, sidecar = _grown(tmp_path, ls_file_bytes)
        engine = LiveIngest(trace_dir, checkpoint=sidecar)
        engine.poll()
        with monkeypatch.context() as patched:
            _kill_at(patched, point)
            with pytest.raises(OSError):
                engine.save_checkpoint()
        engine.save_checkpoint()  # unpatched: succeeds
        state = json.loads(sidecar.read_text())
        assert state["total_events"] == engine.total_events
        assert not sidecar.with_name(sidecar.name + ".tmp").exists()


class TestStaleTempCleanup:
    def test_stale_tmp_is_removed_on_load(self, tmp_path,
                                          ls_file_bytes):
        trace_dir, sidecar = _grown(tmp_path, ls_file_bytes)
        stale = sidecar.with_name(sidecar.name + ".tmp")
        stale.write_text("{torn garbage")  # kill between write+replace
        revived = LiveIngest(trace_dir, checkpoint=sidecar)
        assert revived.total_events > 0  # loaded the sidecar proper
        assert not stale.exists()

    def test_corrupt_sidecar_still_names_itself(self, tmp_path):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        sidecar = tmp_path / "ckpt.json"
        sidecar.write_text("{not json")
        with pytest.raises(ReproError, match="corrupt checkpoint"):
            LiveIngest(trace_dir, checkpoint=sidecar)


class TestDurabilitySteps:
    def test_save_fsyncs_temp_and_directory(self, tmp_path,
                                            ls_file_bytes,
                                            monkeypatch):
        """The save path really performs both fsyncs, in order:
        temp-file fsync strictly before replace, directory fsync
        strictly after."""
        trace_dir, sidecar = _grown(tmp_path, ls_file_bytes)
        engine = LiveIngest(trace_dir, checkpoint=sidecar)
        engine.poll()
        calls: list[str] = []
        real_fsync, real_replace = os.fsync, os.replace

        def traced_fsync(fd):
            calls.append("fsync")
            return real_fsync(fd)

        def traced_replace(src, dst):
            calls.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(checkpoint_module.os, "fsync", traced_fsync)
        monkeypatch.setattr(checkpoint_module.os, "replace",
                            traced_replace)
        engine.save_checkpoint()
        assert calls == ["fsync", "replace", "fsync"]

"""IncrementalDFG: per-case folds equal batch construction."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.errors import ReproError
from repro.core.activity import (
    END_ACTIVITY,
    START_ACTIVITY,
    ActivityLog,
)
from repro.core.dfg import DFG
from repro.core.incremental import IncrementalDFG

ALPHABET = ("read:/a", "read:/b", "write:/a", "openat:/c")


def batch_dfg(bodies: list[tuple[str, ...]], *,
              add_endpoints: bool = True) -> DFG:
    traces = [(START_ACTIVITY, *body, END_ACTIVITY) if add_endpoints
              else body for body in bodies]
    return DFG(ActivityLog(traces))


class TestExtendCase:
    def test_single_case_in_one_piece(self):
        graph = IncrementalDFG()
        graph.extend_case("a1", ["x", "y", "x"])
        assert graph.snapshot() == batch_dfg([("x", "y", "x")])

    def test_growing_case_moves_the_closing_edge(self):
        graph = IncrementalDFG()
        graph.extend_case("a1", ["x"])
        assert graph.snapshot().has_edge("x", END_ACTIVITY)
        graph.extend_case("a1", ["y"])
        snapshot = graph.snapshot()
        assert not snapshot.has_edge("x", END_ACTIVITY)
        assert snapshot.has_edge("y", END_ACTIVITY)
        assert snapshot == batch_dfg([("x", "y")])

    def test_empty_delta_registers_the_case(self):
        """A case whose events all fall outside the partial mapping
        still contributes ⟨●, ■⟩, as in batch."""
        graph = IncrementalDFG()
        graph.extend_case("a1", [])
        assert graph.snapshot() == batch_dfg([()])
        graph.extend_case("a1", [])  # still nothing mapped
        assert graph.snapshot() == batch_dfg([()])
        graph.extend_case("a1", ["x"])
        assert graph.snapshot() == batch_dfg([("x",)])

    def test_cases_commute(self):
        one = IncrementalDFG()
        one.extend_case("a1", ["x"])
        one.extend_case("b1", ["y"])
        one.extend_case("a1", ["x"])
        other = IncrementalDFG()
        other.extend_case("b1", ["y"])
        other.extend_case("a1", ["x", "x"])
        assert one.snapshot() == other.snapshot()

    def test_without_endpoints(self):
        graph = IncrementalDFG(add_endpoints=False)
        graph.extend_case("a1", ["x"])
        assert graph.snapshot() == batch_dfg([("x",)],
                                             add_endpoints=False)
        graph.extend_case("a1", ["y", "x"])
        assert graph.snapshot() == batch_dfg([("x", "y", "x")],
                                             add_endpoints=False)

    def test_counts_and_views(self):
        graph = IncrementalDFG()
        graph.extend_case("a1", ["x", "y"])
        graph.extend_case("b1", ["x"])
        assert graph.n_cases == 2
        assert graph.last_activity("a1") == "y"
        assert graph.last_activity("zzz") is None
        assert graph.total_observations() == \
            graph.snapshot().total_observations()

    def test_diff_since_highlights_new_edges(self):
        graph = IncrementalDFG()
        graph.extend_case("a1", ["x"])
        baseline = graph.snapshot()
        graph.extend_case("a1", ["y"])
        diff = graph.diff_since(baseline)
        green = {d.edge for d in diff.edge_deltas()
                 if d.status == "green-only"}
        assert ("x", "y") in green
        assert ("y", END_ACTIVITY) in green
        red = {d.edge for d in diff.edge_deltas()
               if d.status == "red-only"}
        assert ("x", END_ACTIVITY) in red  # the closing edge moved


class TestStateRoundtrip:
    def test_to_from_state(self):
        graph = IncrementalDFG()
        graph.extend_case("a1", ["x", "y"])
        graph.extend_case("b1", [])
        clone = IncrementalDFG.from_state(graph.to_state())
        assert clone.snapshot() == graph.snapshot()
        clone.extend_case("a1", ["z"])
        graph.extend_case("a1", ["z"])
        assert clone.snapshot() == graph.snapshot()

    def test_from_state_rejects_bad_counts(self):
        state = IncrementalDFG().to_state()
        state["edges"] = [["x", "y", 0]]
        with pytest.raises(ReproError, match="non-positive"):
            IncrementalDFG.from_state(state)


class TestProperties:
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.lists(st.sampled_from(ALPHABET), max_size=5)),
        max_size=20))
    def test_any_increment_schedule_equals_batch(self, schedule):
        """Replaying each case's activity sequence in arbitrary
        interleaved increments always reproduces the batch DFG."""
        graph = IncrementalDFG()
        totals: dict[str, list[str]] = {}
        for case_index, delta in schedule:
            case_id = f"c{case_index}"
            totals.setdefault(case_id, []).extend(delta)
            graph.extend_case(case_id, delta)
        expected = batch_dfg([tuple(body) for body in totals.values()])
        assert graph.snapshot() == expected

    @given(st.lists(st.sampled_from(ALPHABET), max_size=8),
           st.integers(min_value=1, max_value=4))
    def test_split_points_do_not_matter(self, body, pieces):
        whole = IncrementalDFG()
        whole.extend_case("a1", body)
        split = IncrementalDFG()
        step = max(1, len(body) // pieces)
        for i in range(0, max(len(body), 1), step):
            split.extend_case("a1", body[i:i + step])
        assert split.snapshot() == whole.snapshot()

"""The watch loop and the ``st-inspector watch`` command."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.live.engine import LiveIngest
from repro.live.watch import WatchView, run_watch


def _write_all(directory: Path, file_bytes: dict[str, bytes]) -> None:
    for filename, content in file_bytes.items():
        (directory / filename).write_bytes(content)


class TestRunWatch:
    def test_bounded_polls_with_injected_clock(self, tmp_path,
                                               ls_file_bytes):
        _write_all(tmp_path, ls_file_bytes)
        outputs: list[str] = []
        naps: list[float] = []
        now = [0.0]

        def nap(delay: float) -> None:
            naps.append(delay)
            now[0] += delay

        code = run_watch(LiveIngest(tmp_path), interval=0.5, polls=3,
                         out=outputs.append, sleep=nap,
                         clock=lambda: now[0])
        assert code == 0
        assert len(outputs) == 3
        assert naps == [0.5, 0.5]  # no sleep after the final poll
        assert "poll 1:" in outputs[0]
        assert "NODES" in outputs[0]  # first refresh renders the DFG
        assert "NODES" not in outputs[1]  # nothing changed: status only

    def test_slow_polls_do_not_stretch_the_cadence(self, tmp_path,
                                                   ls_file_bytes):
        """Deadline scheduling: a refresh that burns clock time
        shortens the following nap instead of shifting every later
        poll; an overrun re-anchors instead of sleeping negatively."""
        _write_all(tmp_path, ls_file_bytes)
        naps: list[float] = []
        events: list[str] = []
        now = [0.0]
        work = iter([0.25, 1.5, 0.125, 0.0])  # per-poll render cost

        def out(text: str) -> None:
            # The OVERRUN diagnostic is an extra out() between
            # refreshes — announcement lines burn no render budget.
            if text.startswith("OVERRUN"):
                events.append(text)
                return
            now[0] += next(work)

        def nap(delay: float) -> None:
            naps.append(delay)
            now[0] += delay

        run_watch(LiveIngest(tmp_path), interval=1.0, polls=4,
                  out=out, sleep=nap, clock=lambda: now[0])
        # Poll 1 due at 0, works 0.25 → nap 0.75 to the 1.0 deadline.
        # Poll 2 works 1.5 → overruns the 2.0 deadline (now 2.5);
        # poll 3 starts immediately (no nap), re-anchoring at 2.5.
        # Poll 3 works 0.125 → nap 0.875 to the re-anchored 3.5.
        assert naps == [0.75, 0.875]
        # The overrun was announced, not silent: one structured event
        # naming the poll and the overshoot.
        assert events == ["OVERRUN poll 2: work exceeded the 1s "
                          "interval by 0.500s; cadence re-anchored"]

    def test_changes_are_highlighted_between_refreshes(self, tmp_path,
                                                       ls_file_bytes):
        items = sorted(ls_file_bytes.items())
        engine = LiveIngest(tmp_path)
        view = WatchView(engine, top=3)
        _write_all(tmp_path, dict(items[:3]))  # the three 'a' cases
        view.refresh(engine.poll())
        _write_all(tmp_path, dict(items[3:]))  # 'b' brings new edges
        text = view.refresh(engine.poll())
        assert "DFG DIFF" in text
        assert "[G]" in text  # new-since-baseline elements tagged

    def test_checkpoint_saved_every_poll(self, tmp_path, ls_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        run_watch(LiveIngest(trace_dir, checkpoint=sidecar), polls=1,
                  out=lambda _: None, sleep=lambda _: None)
        assert sidecar.exists()

    def test_idle_polls_skip_the_sidecar_rewrite(self, tmp_path,
                                                 ls_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        run_watch(LiveIngest(trace_dir, checkpoint=sidecar), polls=1,
                  out=lambda _: None, sleep=lambda _: None)
        first_save = sidecar.stat().st_mtime_ns
        # Nothing grows: three more polls must not rewrite the file.
        run_watch(LiveIngest(trace_dir, checkpoint=sidecar), polls=3,
                  interval=0, out=lambda _: None, sleep=lambda _: None)
        assert sidecar.stat().st_mtime_ns == first_save


class TestCli:
    def test_watch_once(self, tmp_path, ls_file_bytes, capsys):
        _write_all(tmp_path, ls_file_bytes)
        assert main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "poll 1:" in out
        assert "EDGES" in out

    def test_watch_polls_and_no_dfg(self, tmp_path, ls_file_bytes,
                                    capsys):
        _write_all(tmp_path, ls_file_bytes)
        assert main(["watch", str(tmp_path), "--polls", "2",
                     "--interval", "0", "--no-dfg"]) == 0
        out = capsys.readouterr().out
        assert "poll 2:" in out
        assert "EDGES" not in out

    def test_watch_checkpoint_roundtrip(self, tmp_path, ls_file_bytes,
                                        capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        assert main(["watch", str(trace_dir), "--once",
                     "--checkpoint", str(sidecar)]) == 0
        assert sidecar.exists()
        capsys.readouterr()
        # Second run resumes: same files, no new events.
        assert main(["watch", str(trace_dir), "--once",
                     "--checkpoint", str(sidecar)]) == 0
        assert "poll 2:" in capsys.readouterr().out

    def test_no_dfg_watch_still_accumulates_statistics(self, tmp_path,
                                                       ls_file_bytes):
        """--no-dfg skips rendering, not accounting: the engine behind
        a summary-only watch holds full batch-equal statistics."""
        from repro.core.eventlog import EventLog
        from repro.core.mapping import CallTopDirs
        from repro.core.statistics import IOStatistics

        _write_all(tmp_path, ls_file_bytes)
        engine = LiveIngest(tmp_path, keep_records=False)
        outputs: list[str] = []
        run_watch(engine, polls=1, show_dfg=False,
                  out=outputs.append, sleep=lambda _: None)
        assert "NODES" not in outputs[0]
        log = EventLog.from_source(tmp_path, workers=1)
        batch = IOStatistics(log.with_mapping(CallTopDirs(levels=2)))
        live = engine.statistics()
        for activity in batch.activities():
            assert live[activity] == batch[activity], activity

    def test_watch_cli_runs_without_record_retention(self, tmp_path,
                                                     ls_file_bytes,
                                                     capsys):
        """The watch command never keeps raw records (graph and
        statistics are incremental) yet still renders full labels."""
        _write_all(tmp_path, ls_file_bytes)
        assert main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "Load:" in out  # statistics rendered from accumulators

    def test_no_dfg_checkpoint_restart_keeps_statistics(self, tmp_path,
                                                        ls_file_bytes,
                                                        capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        items = sorted(ls_file_bytes.items())
        sidecar = tmp_path / "ckpt.json"
        _write_all(trace_dir, dict(items[:3]))
        assert main(["watch", str(trace_dir), "--once", "--no-dfg",
                     "--checkpoint", str(sidecar)]) == 0
        _write_all(trace_dir, dict(items[3:]))
        assert main(["watch", str(trace_dir), "--once", "--no-dfg",
                     "--checkpoint", str(sidecar)]) == 0
        capsys.readouterr()
        # A third life still carries the full accumulated history.
        revived = LiveIngest(trace_dir, checkpoint=sidecar)
        revived.poll()
        revived.finalize()
        from repro.core.eventlog import EventLog
        from repro.core.mapping import CallTopDirs
        from repro.core.statistics import IOStatistics

        log = EventLog.from_source(trace_dir, workers=1)
        batch = IOStatistics(log.with_mapping(CallTopDirs(levels=2)))
        live = revived.statistics()
        for activity in batch.activities():
            assert live[activity] == batch[activity], activity
            assert live.timeline(activity) == \
                batch.timeline(activity), activity

    def test_watch_missing_directory_fails_cleanly(self, tmp_path,
                                                   capsys):
        assert main(["watch", str(tmp_path / "nope"), "--once"]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("flags", [
        ("--interval", "-1"),
        ("--interval", "soon"),
        ("--polls", "0"),
        ("--polls", "-3"),
    ])
    def test_invalid_interval_and_polls_rejected(self, tmp_path, flags,
                                                 capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["watch", str(tmp_path), *flags])
        assert excinfo.value.code == 2
        assert flags[0] in capsys.readouterr().err

    def test_restart_renders_full_history_statistics(self, tmp_path,
                                                     ls_file_bytes,
                                                     capsys):
        """A restarted watcher's node labels (Load/DR) must equal a
        batch run over the final directory — the post-restart
        statistics gap — and the old partial-statistics caveat note
        must be gone from the output."""
        from repro.core.eventlog import EventLog
        from repro.core.mapping import CallTopDirs
        from repro.core.statistics import IOStatistics

        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        sidecar = tmp_path / "ckpt.json"
        items = sorted(ls_file_bytes.items())
        _write_all(trace_dir, dict(items[:3]))
        assert main(["watch", str(trace_dir), "--once",
                     "--checkpoint", str(sidecar)]) == 0
        capsys.readouterr()
        # Kill (process gone), grow, restart from the sidecar: the
        # restarted process itself parses only the last three files.
        _write_all(trace_dir, dict(items[3:]))
        assert main(["watch", str(trace_dir), "--once",
                     "--checkpoint", str(sidecar)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint restart" not in out
        log = EventLog.from_source(trace_dir, workers=1)
        batch = IOStatistics(log.with_mapping(CallTopDirs(levels=2)))
        for activity in batch.activities():
            assert batch[activity].load_label in out, activity
            dr = batch[activity].dr_label
            if dr is not None:
                assert dr in out, activity


class TestWeekLongWatcherFlags:
    """``--memory-budget`` and ``--compact-emit`` on the watch CLI."""

    @pytest.mark.parametrize("flags", [
        ("--memory-budget", "0"),
        ("--memory-budget", "-1"),
        ("--memory-budget", "lots"),
        ("--compact-emit", "0"),
        ("--compact-emit", "many"),
    ])
    def test_invalid_values_are_parser_errors(self, tmp_path, flags,
                                              capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["watch", str(tmp_path), *flags])
        assert excinfo.value.code == 2
        assert flags[0] in capsys.readouterr().err

    def test_memory_budget_conflicts_with_window(self, tmp_path,
                                                 ls_file_bytes,
                                                 capsys):
        _write_all(tmp_path, ls_file_bytes)
        code = main(["watch", str(tmp_path), "--once",
                     "--window", "64", "--memory-budget", "1048576"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_compact_emit_requires_emit_and_checkpoint(self, tmp_path,
                                                       ls_file_bytes,
                                                       capsys):
        _write_all(tmp_path, ls_file_bytes)
        assert main(["watch", str(tmp_path), "--once",
                     "--compact-emit", "65536"]) == 2
        assert "emit" in capsys.readouterr().err
        assert main(["watch", str(tmp_path), "--once",
                     "--emit", str(tmp_path / "run.elog"),
                     "--compact-emit", "65536"]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_budgeted_compacting_watch_runs_end_to_end(self, tmp_path,
                                                       ls_file_bytes,
                                                       capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        elog = tmp_path / "run.elog"
        code = main(["watch", str(trace_dir), "--once",
                     "--memory-budget", "1048576",
                     "--checkpoint", str(tmp_path / "ckpt.json"),
                     "--emit", str(elog), "--compact-emit", "1"])
        assert code == 0
        assert f"emitted event log: {elog}" in capsys.readouterr().out
        # The compaction left the journal header-only on exit.
        journal = elog.with_name(elog.name + ".journal")
        assert journal.stat().st_size < 256

"""Fixtures for the live-ingestion suite.

The core device: a *source* workload is rendered to per-file bytes
once per session (``ls_file_bytes``/``ior_file_bytes``, shared from
the root ``tests/conftest.py``), and individual tests replay those
bytes into a fresh directory in increments — new files appearing,
existing files growing, cut at arbitrary byte positions — polling a
:class:`~repro.live.engine.LiveIngest` along the way. Equivalence is
then asserted against one-shot batch ingestion of the final directory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frame import COLUMN_ORDER, FramePools


def pools_identical(a: FramePools, b: FramePools) -> bool:
    return all(list(a.pool_for(name)) == list(b.pool_for(name))
               for name in ("case", "cid", "host", "call", "fp",
                            "activity"))


def assert_logs_identical(one, other) -> None:
    """Byte-identical event-logs: every column array and every string
    pool must match exactly — not just DFG-level equivalence."""
    assert len(one.frame) == len(other.frame)
    for column in COLUMN_ORDER:
        assert np.array_equal(one.frame.column(column),
                              other.frame.column(column)), column
    assert pools_identical(one.frame.pools, other.frame.pools)


@pytest.fixture(scope="session")
def logs_identical():
    """The byte-identity assertion, as a fixture for test modules."""
    return assert_logs_identical

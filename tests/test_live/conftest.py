"""Fixtures for the live-ingestion suite.

The core device: a *source* workload is rendered to per-file bytes once
per session, and individual tests replay those bytes into a fresh
directory in increments — new files appearing, existing files growing,
cut at arbitrary byte positions — polling a
:class:`~repro.live.engine.LiveIngest` along the way. Equivalence is
then asserted against one-shot batch ingestion of the final directory.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.frame import COLUMN_ORDER, FramePools


@pytest.fixture(scope="session")
def ior_file_bytes() -> dict[str, bytes]:
    """``{filename: full content}`` of a small IOR run with a healthy
    share of unfinished/resumed pairs (the state live polling must
    carry)."""
    import tempfile

    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    result = simulate_ior(IORConfig(
        ranks=4, ranks_per_node=2, segments=2, cid="ior", seed=424))
    with tempfile.TemporaryDirectory() as scratch:
        paths = write_trace_files(
            result.recorders, scratch,
            trace_calls=EXPERIMENT_A_CALLS,
            unfinished_probability=0.3, seed=11)
        return {path.name: path.read_bytes() for path in paths}


@pytest.fixture(scope="session")
def ls_file_bytes() -> dict[str, bytes]:
    """The Fig. 1 ``ls`` / ``ls -l`` traces as per-file bytes."""
    import tempfile

    from repro.simulate.workloads.ls import generate_fig1_traces

    with tempfile.TemporaryDirectory() as scratch:
        generate_fig1_traces(scratch)
        return {path.name: path.read_bytes()
                for path in sorted(Path(scratch).iterdir())}


def pools_identical(a: FramePools, b: FramePools) -> bool:
    return all(list(a.pool_for(name)) == list(b.pool_for(name))
               for name in ("case", "cid", "host", "call", "fp",
                            "activity"))


def assert_logs_identical(one, other) -> None:
    """Byte-identical event-logs: every column array and every string
    pool must match exactly — not just DFG-level equivalence."""
    assert len(one.frame) == len(other.frame)
    for column in COLUMN_ORDER:
        assert np.array_equal(one.frame.column(column),
                              other.frame.column(column)), column
    assert pools_identical(one.frame.pools, other.frame.pools)


@pytest.fixture(scope="session")
def logs_identical():
    """The byte-identity assertion, as a fixture for test modules."""
    return assert_logs_identical

"""Incremental statistics equal batch ``IOStatistics`` — always.

The accumulator layer (:class:`repro.core.statistics.StatsAccumulator`)
promises that ``LiveIngest.statistics()`` matches a batch
``IOStatistics`` of the final directory on *every* ``ActivityStats``
field — including the floats (mean data rate, relative duration), the
max-concurrency sweep and the Eq. 15 timelines — after any poll
schedule, any interleaving of growing cases, kill/restart cycles, and
with or without record retention. Hypothesis supplies the adversarial
schedules; the assertions compare field-exactly (no approx): the two
roads must produce bit-identical floats, not merely close ones.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.statistics import IOStatistics, StatsAccumulator
from repro.live.engine import LiveIngest

MAPPING = CallTopDirs(levels=2)

#: Growth schedule: (file index, percent of remaining bytes, poll?).
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=100),
              st.booleans()),
    min_size=1, max_size=30)


def assert_stats_equal(live: IOStatistics, batch: IOStatistics) -> None:
    """Field-exact equality of two IOStatistics (floats included)."""
    assert set(live.activities()) == set(batch.activities())
    assert live.activities() == batch.activities()
    assert live.total_duration_us == batch.total_duration_us
    for activity in batch.activities():
        assert live[activity] == batch[activity], activity
        assert live.timeline(activity) == batch.timeline(activity), \
            activity


def batch_statistics(directory: Path) -> IOStatistics:
    log = EventLog.from_source(directory, workers=1)
    return IOStatistics(log.with_mapping(MAPPING))


def _replay(file_bytes: dict[str, bytes], schedule, *, live_dir: Path,
            engine: LiveIngest, restart_after: int | None = None,
            sidecar: Path | None = None) -> LiveIngest:
    """Grow ``live_dir`` per the schedule, polling along the way."""
    names = sorted(file_bytes)
    offsets = {name: 0 for name in names}
    for step_index, (file_index, percent, poll) in enumerate(schedule):
        name = names[file_index % len(names)]
        content = file_bytes[name]
        remaining = len(content) - offsets[name]
        chunk = max(1, remaining * percent // 100) if remaining else 0
        if chunk:
            with open(live_dir / name, "ab") as handle:
                handle.write(content[offsets[name]:offsets[name] + chunk])
            offsets[name] += chunk
        if poll:
            engine.poll()
        if restart_after is not None and step_index == restart_after:
            engine.save_checkpoint()
            engine = LiveIngest(live_dir, checkpoint=sidecar)
    for name in names:
        tail = file_bytes[name][offsets[name]:]
        if tail:
            with open(live_dir / name, "ab") as handle:
                handle.write(tail)
    engine.poll()
    engine.finalize()
    return engine


class TestLiveStatisticsEqualBatch:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps)
    def test_random_growth_schedule(self, schedule, ior_file_bytes):
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch)
            engine = _replay(ior_file_bytes, schedule,
                             live_dir=live_dir,
                             engine=LiveIngest(live_dir))
            assert_stats_equal(engine.statistics(),
                               batch_statistics(live_dir))

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps,
           restart_after=st.integers(min_value=0, max_value=29))
    def test_random_schedule_with_kill_restart(self, schedule,
                                               restart_after,
                                               ior_file_bytes):
        """The post-restart statistics gap, closed: the revived
        watcher's statistics cover the *full* history (first life
        included) and equal batch on every field."""
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch) / "traces"
            live_dir.mkdir()
            sidecar = Path(scratch) / "ckpt.json"
            engine = _replay(
                ior_file_bytes, schedule, live_dir=live_dir,
                engine=LiveIngest(live_dir, checkpoint=sidecar),
                restart_after=min(restart_after,
                                  max(len(schedule) - 1, 0)),
                sidecar=sidecar)
            assert_stats_equal(engine.statistics(),
                               batch_statistics(live_dir))

    def test_statistics_track_every_poll_midstream(self, tmp_path,
                                                   ls_file_bytes):
        """Mid-stream, the accumulators agree with a batch compute
        over the sealed records (the snapshot log) after *every*
        poll — statistics and log never disagree."""
        engine = LiveIngest(tmp_path)
        for name, content in sorted(ls_file_bytes.items()):
            half = len(content) // 2 + 3
            with open(tmp_path / name, "ab") as handle:
                handle.write(content[:half])
            engine.poll()
            assert_stats_equal(
                engine.statistics(),
                IOStatistics(engine.snapshot_log()
                             .with_mapping(engine.mapping)))
            with open(tmp_path / name, "ab") as handle:
                handle.write(content[half:])
            engine.poll()
        engine.finalize()
        assert_stats_equal(engine.statistics(),
                           batch_statistics(tmp_path))

    def test_keep_records_false_has_full_statistics(self, tmp_path,
                                                    ior_file_bytes):
        """Record retention is orthogonal: the bounded-memory engine
        still produces full batch-equal statistics from an empty
        snapshot log."""
        lean = LiveIngest(tmp_path, keep_records=False)
        for name, content in sorted(ior_file_bytes.items()):
            (tmp_path / name).write_bytes(content)
        lean.poll()
        lean.finalize()
        assert lean.snapshot_log().n_events == 0
        assert_stats_equal(lean.statistics(),
                           batch_statistics(tmp_path))

    def test_zero_size_transfer_keeps_rate_zero_not_none(self,
                                                         tmp_path):
        """A size-0 read with positive duration is a real 0.0 B/s
        measurement, on both roads — not 'no transfers'."""
        (tmp_path / "z_h_1.st").write_bytes(
            b"1  00:00:00.000001 read(3</f>, \"\", 1024) = 0 "
            b"<0.000040>\n")
        engine = LiveIngest(tmp_path)
        engine.poll()
        engine.finalize()
        live = engine.statistics()
        assert live["read:/f"].process_data_rate == 0.0
        assert live["read:/f"].has_transfers
        assert live["read:/f"].dr_label is not None
        assert_stats_equal(live, batch_statistics(tmp_path))


class TestCheckpointStateRoundtrip:
    def test_statistics_survive_json_roundtrip_exactly(self, tmp_path,
                                                       ior_file_bytes):
        """to_state → json → from_state reproduces bit-identical
        statistics (floats round-trip via repr)."""
        engine = LiveIngest(tmp_path)
        for name, content in sorted(ior_file_bytes.items()):
            (tmp_path / name).write_bytes(content)
        engine.poll()
        engine.finalize()
        revived = StatsAccumulator.from_state(
            json.loads(json.dumps(engine.stats.to_state())))
        order = engine._case_order()
        assert_stats_equal(revived.statistics(case_order=order),
                           engine.stats.statistics(case_order=order))


class TestRenderPathIsIncremental:
    def test_watch_render_never_recomputes_batch_statistics(
            self, tmp_path, ls_file_bytes, monkeypatch):
        """The acceptance criterion: the watch render path must not
        call ``compute_statistics`` over the snapshot log anymore."""
        from repro.core.statistics import IOStatistics as StatsClass
        from repro.live.watch import WatchView

        def forbidden(self, event_log):  # pragma: no cover - trap
            raise AssertionError(
                "watch render recomputed batch statistics")

        monkeypatch.setattr(StatsClass, "compute_statistics", forbidden)
        for name, content in ls_file_bytes.items():
            (tmp_path / name).write_bytes(content)
        engine = LiveIngest(tmp_path)
        view = WatchView(engine)
        text = view.refresh(engine.poll())
        assert "Load:" in text  # statistics did render

    def test_untouched_activities_reuse_cached_views(self, tmp_path,
                                                     ls_file_bytes,
                                                     monkeypatch):
        """Idle refreshes are O(activities): with no events in
        between, re-assembly touches neither the concurrency sweep nor
        the event history."""
        import repro.core.statistics as statistics_module

        engine = LiveIngest(tmp_path)
        for name, content in ls_file_bytes.items():
            (tmp_path / name).write_bytes(content)
        engine.poll()
        first = engine.statistics()

        def forbidden(intervals):  # pragma: no cover - trap
            raise AssertionError(
                "idle refresh recomputed max_concurrency")

        monkeypatch.setattr(statistics_module, "max_concurrency",
                            forbidden)
        second = engine.statistics()
        for activity in first.activities():
            assert first[activity] == second[activity]

    def test_timelines_are_point_in_time_snapshots(self, tmp_path,
                                                   ls_file_bytes):
        """Lazy timeline handles must not leak later growth: rows
        materialized after further polls still describe the poll the
        statistics were taken at."""
        items = sorted(ls_file_bytes.items())
        engine = LiveIngest(tmp_path)
        for name, content in items[:3]:
            (tmp_path / name).write_bytes(content)
        engine.poll()
        early = engine.statistics()
        expected = {a: early.timeline(a) for a in early.activities()}
        taken_late = engine.statistics()  # materialize nothing yet
        for name, content in items[3:]:
            (tmp_path / name).write_bytes(content)
        engine.poll()
        for activity, rows in expected.items():
            assert taken_late.timeline(activity) == rows, activity

"""Rolling emit-journal compaction: O(window) disk, byte-identity.

The week-long watcher contract (ROADMAP item 5b): with
``compact_emit`` set, every checkpoint save folds the checkpointed
journal prefix into the destination ``.elog`` and truncates the
journal, so on-disk state stays bounded by the poll window while the
packed ``.elog`` grows — and the final ``.elog`` is byte-identical to
a one-shot batch ``convert`` of the directory, *no matter where a
kill lands*: hypothesis chooses the growth schedule and the
compaction durability step to die at (``tests/faultinject.py``), and
a revived watcher must still converge to the same bytes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._util.errors import ReproError
from repro.elstore.convert import convert_source
from repro.live.engine import LiveIngest
from repro.telemetry import Telemetry
from tests.faultinject import (
    COMPACTION_KILL_POINTS,
    SimulatedKill,
    kill_compaction_at,
    tear_tail,
)
from tests.strategies import DirectoryGrower, growth_steps

#: Generous ceiling for "journal holds only its header": the header is
#: one JSON line (~100 bytes); any journaled record would blow past it.
HEADER_ONLY = 256


def _batch_elog(tmp_path: Path, trace_dir: Path) -> bytes:
    dest = tmp_path / "batch.elog"
    convert_source(trace_dir, dest, workers=1)
    return dest.read_bytes()


def _engine(live_dir: Path, elog: Path, sidecar: Path,
            **kwargs) -> LiveIngest:
    return LiveIngest(live_dir, keep_records=False, emit=elog,
                      checkpoint=sidecar, compact_emit=1, **kwargs)


class TestDiskStaysBounded:
    def test_journal_shrinks_to_header_after_each_save(
            self, tmp_path, ior_file_bytes):
        """``compact_emit=1``: every save packs the whole durable
        journal, so right after a save the journal is header-only
        while the ``.elog`` keeps growing — disk usage is O(window),
        not O(events)."""
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        journal = elog.with_name(elog.name + ".journal")
        engine = _engine(live_dir, elog, tmp_path / "ckpt.json")
        grower = DirectoryGrower(live_dir, ior_file_bytes)
        elog_sizes = []
        for _ in grower.each_finished():
            engine.poll()
            engine.save_checkpoint()
            assert journal.stat().st_size <= HEADER_ONLY
            elog_sizes.append(elog.stat().st_size)
        engine.finalize()
        engine.pack_emit()
        # The packed destination grew monotonically across compactions
        # and ends byte-identical to batch conversion.
        assert elog_sizes == sorted(elog_sizes)
        assert elog_sizes[-1] > elog_sizes[0]
        assert elog.read_bytes() == _batch_elog(tmp_path, live_dir)

    def test_compaction_metrics_are_exposed(self, tmp_path,
                                            ior_file_bytes):
        telemetry = Telemetry()
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        engine = _engine(live_dir, elog, tmp_path / "ckpt.json",
                         telemetry=telemetry)
        grower = DirectoryGrower(live_dir, ior_file_bytes)
        grower.finish()
        engine.poll()
        engine.save_checkpoint()
        registry = telemetry.registry
        assert registry.counter("journal_compactions_total").value == 1
        assert registry.gauge("emit_journal_bytes").value <= HEADER_ONLY
        assert registry.histogram("phase_seconds",
                                  phase="compact").count == 1

    def test_below_threshold_no_compaction(self, tmp_path,
                                           ior_file_bytes):
        """A huge ``compact_emit`` never triggers: the journal just
        grows, exactly as without the flag."""
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        journal = elog.with_name(elog.name + ".journal")
        engine = LiveIngest(live_dir, keep_records=False, emit=elog,
                            checkpoint=tmp_path / "ckpt.json",
                            compact_emit=1 << 40)
        grower = DirectoryGrower(live_dir, ior_file_bytes)
        grower.finish()
        engine.poll()
        engine.save_checkpoint()
        assert journal.stat().st_size > HEADER_ONLY  # nothing packed
        engine.finalize()
        engine.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, live_dir)


class TestKillDuringCompaction:
    @pytest.mark.parametrize("point", COMPACTION_KILL_POINTS)
    def test_every_step_kill_recovers_byte_identical(
            self, tmp_path, ior_file_bytes, monkeypatch, point):
        """Die at each of the six compaction durability steps in turn;
        a revived watcher finishes the run and the packed ``.elog``
        equals batch conversion byte for byte."""
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        sidecar = tmp_path / "ckpt.json"
        engine = _engine(live_dir, elog, sidecar)
        grower = DirectoryGrower(live_dir, ior_file_bytes)
        reveal = grower.each_finished()
        next(reveal)
        engine.poll()
        engine.save_checkpoint()  # compaction #1 lands cleanly
        next(reveal)
        engine.poll()
        with monkeypatch.context() as patched:
            kill_compaction_at(patched, point)
            with pytest.raises(SimulatedKill):
                engine.save_checkpoint()  # compaction #2 dies mid-step
        # Revive; the journal+elog pair must restore as a partition
        # of the record stream (never a loss, never a duplicate).
        revived = _engine(live_dir, elog, sidecar)
        for _ in reveal:
            revived.poll()
            revived.save_checkpoint()
        revived.finalize()
        revived.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, live_dir)

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(schedule=growth_steps(n_files=4, max_steps=12),
           kill_step=st.integers(min_value=0, max_value=11),
           point=st.sampled_from(COMPACTION_KILL_POINTS))
    def test_random_schedule_random_kill_point(self, schedule,
                                               kill_step, point,
                                               ior_file_bytes,
                                               tmp_path_factory):
        """Hypothesis drives both adversaries at once: an arbitrary
        growth/poll schedule, plus a kill at an arbitrary compaction
        step somewhere in the middle. Polled steps checkpoint (and so
        compact); at ``kill_step`` the kill is armed — if that save's
        compaction reaches the doomed seam the process dies and is
        revived. The end state is always byte-identical to batch."""
        tmp_path = tmp_path_factory.mktemp("kill")
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        sidecar = tmp_path / "ckpt.json"
        engine = _engine(live_dir, elog, sidecar)
        grower = DirectoryGrower(live_dir, ior_file_bytes)
        kill_step = min(kill_step, len(schedule) - 1)
        for step_index, (file_index, percent, poll) in \
                enumerate(schedule):
            grower.apply(file_index, percent)
            if not poll:
                continue
            engine.poll()
            if step_index == kill_step:
                with pytest.MonkeyPatch.context() as patched:
                    kill_compaction_at(patched, point)
                    try:
                        engine.save_checkpoint()
                    except SimulatedKill:
                        engine = _engine(live_dir, elog, sidecar)
            else:
                engine.save_checkpoint()
        grower.finish()
        engine.poll()
        engine.finalize()
        engine.save_checkpoint()
        engine.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, live_dir)


class TestRestoreEdges:
    def _compacted_run(self, tmp_path, file_bytes):
        """A run with at least one compaction behind it; returns
        (live_dir, elog, sidecar, engine) with the engine closed."""
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        sidecar = tmp_path / "ckpt.json"
        engine = _engine(live_dir, elog, sidecar)
        grower = DirectoryGrower(live_dir, file_bytes)
        grower.finish()
        engine.poll()
        engine.save_checkpoint()
        # The sidecar is written *before* its save's compaction runs;
        # a second save is what records the advanced pack offset.
        engine.save_checkpoint()
        engine.close()
        return live_dir, elog, sidecar

    def test_sidecar_is_v6_and_accounts_for_the_pack(self, tmp_path,
                                                     ls_file_bytes):
        live_dir, elog, sidecar = self._compacted_run(tmp_path,
                                                      ls_file_bytes)
        state = json.loads(sidecar.read_text())
        assert state["version"] == 6
        assert state["emit_packed"] > 0
        assert state["emit_packed"] == state["emit_offset"]

    def test_journal_replaced_behind_checkpoint_is_an_error(
            self, tmp_path, ls_file_bytes):
        """Sidecar says N bytes were compacted; a journal that claims
        fewer (here: a fresh one) was swapped in behind it."""
        live_dir, elog, sidecar = self._compacted_run(tmp_path,
                                                      ls_file_bytes)
        elog.with_name(elog.name + ".journal").unlink()
        with pytest.raises(ReproError,
                           match="replaced behind the checkpoint"):
            _engine(live_dir, elog, sidecar)

    def test_checkpoint_older_than_compaction_is_an_error(
            self, tmp_path, ls_file_bytes):
        """A sidecar from *before* the compaction claims a durable
        offset inside the packed prefix — unrecoverably stale."""
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        sidecar = tmp_path / "ckpt.json"
        engine = _engine(live_dir, elog, sidecar)
        items = sorted(ls_file_bytes.items())
        for name, content in items[:3]:
            (live_dir / name).write_bytes(content)
        engine.poll()
        engine.save_checkpoint(tmp_path / "old.json")  # pre-compaction
        old = (tmp_path / "old.json").read_bytes()
        for name, content in items[3:]:
            (live_dir / name).write_bytes(content)
        engine.poll()
        engine.save_checkpoint()  # compacts through a larger offset
        engine.close()
        sidecar.write_bytes(old)  # "restore from last week's backup"
        with pytest.raises(ReproError,
                           match="already compacted through"):
            _engine(live_dir, elog, sidecar)

    def test_missing_elog_after_compaction_is_an_error(self, tmp_path,
                                                       ls_file_bytes):
        live_dir, elog, sidecar = self._compacted_run(tmp_path,
                                                      ls_file_bytes)
        elog.unlink()
        revived = _engine(live_dir, elog, sidecar)
        with pytest.raises(ReproError, match="unrecoverable"):
            revived.pack_emit()

    def test_fresh_watch_discards_compacted_pair(self, tmp_path,
                                                 ls_file_bytes):
        """No checkpoint: a leftover journal/.elog pair from a dead
        watch is discarded, and the fresh run's pack overwrites the
        stale ``.elog`` with exactly the batch bytes."""
        live_dir, elog, sidecar = self._compacted_run(tmp_path,
                                                      ls_file_bytes)
        sidecar.unlink()
        fresh = LiveIngest(live_dir, keep_records=False, emit=elog)
        fresh.poll()
        fresh.finalize()
        fresh.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, live_dir)

    def test_torn_journal_tail_is_recovered(self, tmp_path,
                                            ior_file_bytes):
        """Crash mid-append after the last checkpoint: the torn final
        line is past the checkpointed offset, so restore cuts it and
        the revived tails re-read those trace bytes."""
        live_dir = tmp_path / "traces"
        live_dir.mkdir()
        elog = tmp_path / "run.elog"
        sidecar = tmp_path / "ckpt.json"
        journal = elog.with_name(elog.name + ".journal")
        engine = _engine(live_dir, elog, sidecar)
        grower = DirectoryGrower(live_dir, ior_file_bytes)
        reveal = grower.each_finished()
        next(reveal)
        engine.poll()
        engine.save_checkpoint()
        next(reveal)
        engine.poll()  # journaled past the checkpointed offset
        engine.close()
        tear_tail(journal, 7)  # rip into the un-checkpointed tail
        revived = _engine(live_dir, elog, sidecar)
        for _ in reveal:
            revived.poll()
            revived.save_checkpoint()
        revived.finalize()
        revived.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, live_dir)

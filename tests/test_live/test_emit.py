"""``watch --emit``: the packed ``.elog`` is byte-identical to batch.

The durable journal + checkpoint-offset contract
(:mod:`repro.live.emit`): after any poll schedule and any number of
kill/restart cycles, packing the journal produces the same *bytes* as
``convert`` over the final directory — same columns, same global
string pools, same order. Plus the failure modes: a missing parent
directory fails fast at construction, a checkpoint that predates
``--emit`` refuses to resume with it, and a journal that shrank behind
the checkpoint is an error instead of silent data loss.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro._util.errors import ReproError
from repro.elstore.convert import convert_source
from repro.live.engine import LiveIngest
from repro.live.watch import run_watch


def _write_all(directory: Path, file_bytes: dict[str, bytes]) -> None:
    for filename, content in file_bytes.items():
        (directory / filename).write_bytes(content)


def _batch_elog(tmp_path: Path, trace_dir: Path) -> bytes:
    dest = tmp_path / "batch.elog"
    convert_source(trace_dir, dest, workers=1)
    return dest.read_bytes()


class TestByteIdentity:
    def test_single_poll_pack_equals_batch_convert(self, tmp_path,
                                                   ls_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        elog = tmp_path / "run.elog"
        engine = LiveIngest(trace_dir, keep_records=False, emit=elog)
        engine.poll()
        engine.finalize()
        packed = engine.pack_emit()
        assert packed == elog
        assert elog.read_bytes() == _batch_elog(tmp_path, trace_dir)

    def test_incremental_growth_equals_batch(self, tmp_path,
                                             ior_file_bytes):
        """Byte-split growth with a poll per step — including
        unfinished/resumed pairs crossing poll boundaries."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        elog = tmp_path / "run.elog"
        engine = LiveIngest(trace_dir, keep_records=False, emit=elog)
        for name, content in sorted(ior_file_bytes.items()):
            third = len(content) // 3 + 1
            for start in range(0, len(content), third):
                with open(trace_dir / name, "ab") as handle:
                    handle.write(content[start:start + third])
                engine.poll()
        engine.finalize()
        engine.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, trace_dir)

    def test_kill_restart_cycles_stay_byte_identical(self, tmp_path,
                                                     ior_file_bytes):
        """The acceptance test: journal + checkpoint survive a kill
        *after* un-checkpointed journal lines were appended — the
        revived life truncates them, re-seals the same trace bytes,
        and the final pack equals batch."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        elog = tmp_path / "run.elog"
        sidecar = tmp_path / "ckpt.json"
        items = sorted(ior_file_bytes.items())

        engine = LiveIngest(trace_dir, keep_records=False, emit=elog,
                            checkpoint=sidecar)
        _write_all(trace_dir, dict(items[:2]))
        engine.poll()
        engine.save_checkpoint()
        # Progress past the checkpoint: journaled but never persisted.
        _write_all(trace_dir, dict(items[2:3]))
        engine.poll()
        del engine  # SIGKILL — no save, journal ahead of the sidecar

        second = LiveIngest(trace_dir, keep_records=False, emit=elog,
                            checkpoint=sidecar)
        _write_all(trace_dir, dict(items[2:]))
        second.poll()
        second.save_checkpoint()
        del second  # a second kill, this one right after a save

        third = LiveIngest(trace_dir, keep_records=False, emit=elog,
                           checkpoint=sidecar)
        third.poll()
        third.finalize()
        third.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, trace_dir)

    def test_journal_survives_pack(self, tmp_path, ls_file_bytes):
        """Packing must not consume the journal — it is the source of
        truth for the next life."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        elog = tmp_path / "run.elog"
        engine = LiveIngest(trace_dir, emit=elog)
        engine.poll()
        engine.pack_emit()
        journal = elog.with_name(elog.name + ".journal")
        assert journal.exists() and journal.stat().st_size > 0
        engine.pack_emit()  # idempotent
        assert elog.read_bytes() == elog.read_bytes()


class TestWatchLoopIntegration:
    def test_run_watch_packs_on_exit(self, tmp_path, ls_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        elog = tmp_path / "run.elog"
        outputs: list[str] = []
        code = run_watch(
            LiveIngest(trace_dir, keep_records=False, emit=elog),
            polls=2, interval=0, out=outputs.append,
            sleep=lambda _: None)
        assert code == 0
        assert elog.exists()
        assert any("emitted event log" in text for text in outputs)

    def test_cli_emit_once(self, tmp_path, ls_file_bytes, capsys):
        from repro.cli import main

        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        elog = tmp_path / "run.elog"
        code = main(["watch", str(trace_dir), "--once", "--no-dfg",
                     "--emit", str(elog)])
        assert code == 0
        assert f"emitted event log: {elog}" in capsys.readouterr().out
        assert elog.exists()


class TestFailureModes:
    def test_missing_parent_fails_at_construction(self, tmp_path):
        with pytest.raises(ReproError, match="parent directory"):
            LiveIngest(tmp_path, emit=tmp_path / "nope" / "run.elog")

    def test_cli_missing_parent_is_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["watch", str(tmp_path), "--once",
                     "--emit", str(tmp_path / "nope" / "run.elog")])
        assert code == 2
        assert "parent directory" in capsys.readouterr().err

    def test_pack_without_emit_is_an_error(self, tmp_path):
        with pytest.raises(ReproError, match="no emit destination"):
            LiveIngest(tmp_path).pack_emit()

    def test_pre_emit_checkpoint_refuses_emit_resume(self, tmp_path,
                                                     ls_file_bytes):
        """A sidecar from a life without --emit accounts for sealed
        events the journal never saw — resuming it with --emit must be
        an error, not a silently incomplete pack."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        first = LiveIngest(trace_dir, checkpoint=sidecar)
        first.poll()
        first.save_checkpoint()
        with pytest.raises(ReproError, match="never emit-journaled"):
            LiveIngest(trace_dir, checkpoint=sidecar,
                       emit=tmp_path / "run.elog")

    def test_shrunken_journal_is_an_error(self, tmp_path,
                                          ls_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        elog = tmp_path / "run.elog"
        sidecar = tmp_path / "ckpt.json"
        engine = LiveIngest(trace_dir, emit=elog, checkpoint=sidecar)
        engine.poll()
        engine.save_checkpoint()
        journal = elog.with_name(elog.name + ".journal")
        journal.write_bytes(journal.read_bytes()[:10])
        with pytest.raises(ReproError, match="delete both"):
            LiveIngest(trace_dir, emit=elog, checkpoint=sidecar)

    def test_fresh_watch_truncates_a_leftover_journal(self, tmp_path,
                                                      ls_file_bytes):
        """No checkpoint → a new watch owns the journal; stale lines
        from an unrelated run must not leak into the pack."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        elog = tmp_path / "run.elog"
        journal = elog.with_name(elog.name + ".journal")
        journal.write_bytes(b'{"stale": "line"}\n')
        engine = LiveIngest(trace_dir, emit=elog)
        engine.poll()
        engine.finalize()
        engine.pack_emit()
        assert elog.read_bytes() == _batch_elog(tmp_path, trace_dir)

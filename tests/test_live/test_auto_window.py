"""Auto-window (``--memory-budget``): the cap is measured, not guessed.

ROADMAP item 5a: instead of a fixed ``--window`` interval cap, the
watcher takes a byte budget and re-derives the per-buffer cap after
every poll from the buffers' *measured* footprint — shrinking as a
week-long watch accumulates cases, flooring at the minimum window of
2 intervals per buffer.
"""

from __future__ import annotations

import pytest

from repro._util.errors import ReproError
from repro.live.engine import LiveIngest
from tests.strategies import write_all


class TestConstruction:
    def test_window_and_budget_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ReproError, match="mutually exclusive"):
            LiveIngest(tmp_path, window=64, memory_budget=1 << 20)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_budget_must_be_positive(self, tmp_path, bad):
        with pytest.raises(ReproError, match="memory_budget"):
            LiveIngest(tmp_path, memory_budget=bad)

    def test_compact_emit_requires_emit(self, tmp_path):
        with pytest.raises(ReproError, match="no journal"):
            LiveIngest(tmp_path, compact_emit=1024)

    def test_compact_emit_requires_checkpoint(self, tmp_path):
        with pytest.raises(ReproError, match="checkpoint"):
            LiveIngest(tmp_path, emit=tmp_path / "run.elog",
                       compact_emit=1024)

    @pytest.mark.parametrize("bad", [0, -5])
    def test_compact_emit_must_be_positive(self, tmp_path, bad):
        with pytest.raises(ReproError, match="compact_emit"):
            LiveIngest(tmp_path, emit=tmp_path / "run.elog",
                       checkpoint=tmp_path / "ckpt.json",
                       compact_emit=bad)


class TestAdaptation:
    def test_large_budget_leaves_buffers_unbounded_enough(
            self, tmp_path, ior_file_bytes):
        """A budget comfortably above the workload's footprint must
        not coarsen anything: statistics equal the unbounded run's."""
        from tests.test_live.test_statistics_live import (
            assert_stats_equal,
        )

        write_all(tmp_path, ior_file_bytes)
        budgeted = LiveIngest(tmp_path, memory_budget=64 << 20)
        budgeted.poll()
        budgeted.finalize()
        unbounded = LiveIngest(tmp_path)  # same dir, fresh engine
        unbounded.poll()
        unbounded.finalize()
        assert_stats_equal(budgeted.statistics(),
                           unbounded.statistics())

    def test_small_budget_caps_the_buffers(self, tmp_path,
                                           ior_file_bytes):
        """A tiny budget forces the cap down to (or near) the floor;
        the buffered footprint lands in the budget's ballpark."""
        write_all(tmp_path, ior_file_bytes)
        engine = LiveIngest(tmp_path, memory_budget=1)
        engine.poll()
        assert engine.window == 2  # the floor
        assert engine.stats.n_buffered_intervals() <= \
            2 * engine.stats.n_interval_buffers()

    def test_window_shrinks_as_cases_accumulate(self, tmp_path,
                                                ior_file_bytes):
        """The derived cap is per-buffer: with a budget sized to the
        first file's buffers, revealing more files (more buffers)
        drives the per-buffer window down, never up."""
        names = sorted(ior_file_bytes)
        (tmp_path / names[0]).write_bytes(ior_file_bytes[names[0]])
        engine = LiveIngest(tmp_path, memory_budget=4096)
        engine.poll()
        first_window = engine.window
        assert first_window is not None and first_window >= 2
        for name in names[1:]:
            (tmp_path / name).write_bytes(ior_file_bytes[name])
        engine.poll()
        assert engine.stats.n_interval_buffers() > 0
        assert engine.window <= first_window

    def test_budget_rides_the_fleet_jobspec(self, tmp_path,
                                            ior_file_bytes):
        from repro.fleet.job import JobSpec

        write_all(tmp_path, ior_file_bytes)
        spec = JobSpec(source=tmp_path, memory_budget=4096)
        engine = spec.build_engine()
        engine.poll()
        assert engine.memory_budget == 4096
        assert engine.window is not None  # adaptation engaged

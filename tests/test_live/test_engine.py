"""LiveIngest: directory polls equal one-shot batch ingestion."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro._util.errors import TraceParseError
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallOnly, CallTopDirs
from repro.ingest.summary import cases_summary
from repro.live.engine import LiveIngest
from repro.strace.reader import read_trace_dir

MAPPING = CallTopDirs(levels=2)


def grow_file(directory: Path, filename: str, chunk: bytes) -> None:
    with open(directory / filename, "ab") as handle:
        handle.write(chunk)


def batch_dfg(directory: Path, mapping=MAPPING) -> DFG:
    log = EventLog.from_source(directory, workers=1)
    return DFG(log.with_mapping(mapping))


class TestPolling:
    def test_empty_directory_is_a_normal_state(self, tmp_path):
        engine = LiveIngest(tmp_path)
        result = engine.poll()
        assert not result.changed
        assert engine.snapshot_dfg().n_nodes == 0
        assert engine.snapshot_log().n_events == 0

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(TraceParseError, match="not a directory"):
            LiveIngest(tmp_path / "nope").poll()

    def test_files_appearing_one_per_poll(self, tmp_path, ls_file_bytes,
                                          logs_identical):
        engine = LiveIngest(tmp_path)
        for filename, content in ls_file_bytes.items():
            (tmp_path / filename).write_bytes(content)
            result = engine.poll()
            assert result.new_files  # the file was picked up
        engine.finalize()
        logs_identical(engine.snapshot_log(),
                       EventLog.from_source(tmp_path, workers=1))
        assert engine.snapshot_dfg() == batch_dfg(tmp_path)

    def test_appends_at_odd_byte_boundaries(self, tmp_path,
                                            ior_file_bytes,
                                            logs_identical):
        """Round-robin growth, cut mid-line: the full carry-over path."""
        engine = LiveIngest(tmp_path)
        chunk = 211  # prime, so cuts drift through line boundaries
        offsets = {name: 0 for name in ior_file_bytes}
        while any(offsets[n] < len(c)
                  for n, c in ior_file_bytes.items()):
            for name, content in ior_file_bytes.items():
                at = offsets[name]
                if at < len(content):
                    grow_file(tmp_path, name, content[at:at + chunk])
                    offsets[name] = at + chunk
            engine.poll()
        engine.finalize()
        logs_identical(engine.snapshot_log(),
                       EventLog.from_source(tmp_path, workers=1))
        assert engine.snapshot_dfg() == batch_dfg(tmp_path)

    def test_log_and_graph_agree_after_every_poll(self, tmp_path,
                                                  ior_file_bytes):
        """DFG(snapshot_log) == snapshot_dfg mid-stream, not just at
        the end — the standing invariant of the engine."""
        engine = LiveIngest(tmp_path)
        for name, content in ior_file_bytes.items():
            half = len(content) // 2
            grow_file(tmp_path, name, content[:half])
            engine.poll()
            assert DFG(engine.snapshot_log().with_mapping(MAPPING)) \
                == engine.snapshot_dfg()
            grow_file(tmp_path, name, content[half:])
            engine.poll()
            assert DFG(engine.snapshot_log().with_mapping(MAPPING)) \
                == engine.snapshot_dfg()

    def test_merge_diagnostics_match_batch(self, tmp_path,
                                           ior_file_bytes):
        engine = LiveIngest(tmp_path)
        for name, content in ior_file_bytes.items():
            (tmp_path / name).write_bytes(content)
        engine.poll()
        engine.finalize()
        assert cases_summary(engine.cases()) == \
            cases_summary(read_trace_dir(tmp_path, workers=1))

    def test_cases_without_sealed_records_still_intern(
            self, tmp_path, logs_identical):
        """An empty trace file and one holding only an orphan
        unfinished line: batch interns both cases and reports their
        diagnostics — so must the live snapshot."""
        (tmp_path / "a_host1_1.st").write_bytes(
            b"100  10:00:00.000001 read(3</a>, ..., 10) = 10 <0.000005>\n")
        (tmp_path / "b_host1_2.st").write_bytes(b"")
        (tmp_path / "c_host1_3.st").write_bytes(
            b"300  10:00:00.000002 read(3</c>, <unfinished ...>\n")
        engine = LiveIngest(tmp_path)
        engine.poll()
        engine.finalize()
        logs_identical(engine.snapshot_log(),
                       EventLog.from_source(tmp_path, workers=1))
        assert cases_summary(engine.cases()) == \
            cases_summary(read_trace_dir(tmp_path, workers=1))

    def test_finalize_consumes_late_appends_and_files(self, tmp_path,
                                                      ls_file_bytes,
                                                      logs_identical):
        """Growth between the last poll and finalize is not lost —
        finalize performs one final poll itself."""
        items = sorted(ls_file_bytes.items())
        engine = LiveIngest(tmp_path)
        (name0, content0) = items[0]
        grow_file(tmp_path, name0, content0[: len(content0) // 2])
        engine.poll()
        grow_file(tmp_path, name0, content0[len(content0) // 2:])
        for name, content in items[1:]:  # files never seen by a poll
            (tmp_path / name).write_bytes(content)
        engine.finalize()
        logs_identical(engine.snapshot_log(),
                       EventLog.from_source(tmp_path, workers=1))
        assert engine.snapshot_dfg() == batch_dfg(tmp_path)
        engine.finalize()  # idempotent

    def test_finalize_orphans_inflight_unfinished(self, tmp_path):
        (tmp_path / "a_host1_1.st").write_bytes(
            b"100  10:00:00.000001 read(3</a>, <unfinished ...>\n"
            b"200  10:00:00.000500 close(5</c>) = 0 <0.000001>\n")
        engine = LiveIngest(tmp_path, mapping=CallOnly())
        result = engine.poll()
        assert result.n_pending == 1
        assert result.n_buffered == 1  # close() waits behind the read
        assert engine.total_events == 0
        engine.finalize()
        assert engine.total_events == 1  # the close seals; read orphans
        (case,) = engine.cases()
        assert case.merge_stats.orphan_unfinished == 1
        assert engine.snapshot_dfg() == batch_dfg(tmp_path, CallOnly())


class TestDiscoveryRules:
    def test_recursive_per_host_layout(self, tmp_path, ls_file_bytes,
                                       logs_identical):
        nested = tmp_path / "host1"
        nested.mkdir()
        for filename, content in ls_file_bytes.items():
            (nested / filename).write_bytes(content)
        engine = LiveIngest(tmp_path, recursive=True)
        engine.poll()
        engine.finalize()
        logs_identical(
            engine.snapshot_log(),
            EventLog.from_source(tmp_path, workers=1,
                                     recursive=True))

    def test_duplicate_case_across_subdirs_rejected(self, tmp_path):
        for host_dir in ("n1", "n2"):
            sub = tmp_path / host_dir
            sub.mkdir()
            (sub / "a_host1_1.st").write_bytes(b"")
        engine = LiveIngest(tmp_path, recursive=True)
        with pytest.raises(TraceParseError, match="duplicate case"):
            engine.poll()

    def test_cids_filter(self, tmp_path, ls_file_bytes):
        for filename, content in ls_file_bytes.items():
            (tmp_path / filename).write_bytes(content)
        engine = LiveIngest(tmp_path, cids={"a"})
        engine.poll()
        engine.finalize()
        log = engine.snapshot_log()
        assert log.cids() == ["a"]
        batch = EventLog.from_source(tmp_path, cids={"a"},
                                         workers=1)
        assert log.n_events == batch.n_events

    def test_non_trace_files_ignored(self, tmp_path, ls_file_bytes):
        (tmp_path / "checkpoint.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("hi")
        name, content = next(iter(ls_file_bytes.items()))
        (tmp_path / name).write_bytes(content)
        engine = LiveIngest(tmp_path)
        result = engine.poll()
        assert result.n_files == 1

    def test_tracked_file_disappearing_is_an_error(self, tmp_path,
                                                   ls_file_bytes):
        name, content = next(iter(ls_file_bytes.items()))
        (tmp_path / name).write_bytes(content)
        engine = LiveIngest(tmp_path)
        engine.poll()
        (tmp_path / name).unlink()
        with pytest.raises(TraceParseError, match="disappeared"):
            engine.poll()


class TestBoundedMemory:
    def test_keep_records_false_still_tracks_the_graph(self, tmp_path,
                                                       ior_file_bytes):
        lean = LiveIngest(tmp_path, keep_records=False)
        for name, content in ior_file_bytes.items():
            (tmp_path / name).write_bytes(content)
        lean.poll()
        lean.finalize()
        assert lean.snapshot_dfg() == batch_dfg(tmp_path)
        assert lean.total_events == \
            EventLog.from_source(tmp_path, workers=1).n_events
        # The trade: no record retention, so the snapshot log is empty.
        assert lean.snapshot_log().n_events == 0
        assert lean.cases() == []


class TestSessionWiring:
    def test_inspection_session_from_live(self, tmp_path, ls_file_bytes):
        from repro.pipeline.session import InspectionSession

        for filename, content in ls_file_bytes.items():
            (tmp_path / filename).write_bytes(content)
        engine = LiveIngest(tmp_path)
        engine.poll()
        session = InspectionSession.from_live(engine)
        assert session.dfg == engine.snapshot_dfg()
        text = session.render("ascii")
        assert "DFG:" in text

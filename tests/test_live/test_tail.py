"""FileTail: byte-offset tailing with carry-over parse state."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro._util.errors import TraceParseError
from repro.live.tail import FileTail
from repro.strace.reader import read_trace_file

LINE_A = b"100  10:00:00.000001 read(3</a>, ..., 10) = 10 <0.000005>\n"
LINE_B = b"100  10:00:00.000200 write(4</b>, ..., 5) = 5 <0.000002>\n"
UNFINISHED = b"100  10:00:00.000400 read(3</a>, <unfinished ...>\n"
OTHER_PID = b"200  10:00:00.000500 close(5</c>) = 0 <0.000001>\n"
RESUMED = b"100  10:00:00.000900 <... read resumed> ..., 20) = 20 <0.000899>\n"


def _tail(tmp_path: Path, name: str = "a_host1_1.st",
          **kwargs) -> tuple[Path, FileTail]:
    path = tmp_path / name
    path.write_bytes(b"")
    return path, FileTail(path, **kwargs)


class TestByteTailing:
    def test_records_across_polls(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(LINE_A)
        assert [r.call for r in tail.poll()] == ["read"]
        with open(path, "ab") as h:
            h.write(LINE_B)
        assert [r.call for r in tail.poll()] == ["write"]
        assert tail.poll() == []  # nothing appended

    def test_line_split_at_arbitrary_byte(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(LINE_A[:17])  # mid-timestamp
        assert tail.poll() == []
        with open(path, "ab") as h:
            h.write(LINE_A[17:] + LINE_B)
        assert [r.call for r in tail.poll()] == ["read", "write"]

    def test_crlf_split_between_cr_and_lf(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(LINE_A[:-1] + b"\r")  # CR lands, LF pending
        assert tail.poll() == []  # held back: may pair with a '\n'
        with open(path, "ab") as h:
            h.write(b"\n" + LINE_B)
        records = tail.poll()
        assert [r.call for r in records] == ["read", "write"]

    def test_lone_cr_terminates_line_at_finish(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(LINE_A[:-1] + b"\r")
        assert tail.poll() == []
        records = tail.finish()
        assert [r.call for r in records] == ["read"]

    def test_unterminated_final_line_parsed_at_finish(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(LINE_A + LINE_B[:-1])  # no trailing newline
        assert [r.call for r in tail.poll()] == ["read"]
        assert [r.call for r in tail.finish()] == ["write"]

    def test_shrunk_file_is_an_error(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(LINE_A + LINE_B)
        tail.poll()
        path.write_bytes(LINE_A)
        with pytest.raises(TraceParseError, match="shrank"):
            tail.poll()

    def test_poll_after_finish_rejected(self, tmp_path):
        path, tail = _tail(tmp_path)
        tail.finish()
        with pytest.raises(TraceParseError, match="finish"):
            tail.poll()

    def test_vanished_file_is_an_error(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.unlink()
        with pytest.raises(TraceParseError, match="vanished"):
            tail.poll()


class TestMergeAcrossPolls:
    def test_unfinished_resumed_in_different_polls(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(UNFINISHED)
        assert tail.poll() == []
        with open(path, "ab") as h:
            h.write(RESUMED)
        (record,) = tail.poll()
        assert record.call == "read"
        assert record.size == 20
        assert tail.merger.stats.merged_pairs == 1

    def test_intermediate_record_sealed_only_after_merge(self, tmp_path):
        """A record between the two halves must wait: the merged record
        sorts before it."""
        path, tail = _tail(tmp_path)
        path.write_bytes(UNFINISHED + OTHER_PID)
        assert tail.poll() == []  # close(5) buffered behind the merge
        assert tail.merger.n_buffered == 1
        with open(path, "ab") as h:
            h.write(RESUMED)
        records = tail.poll()
        assert [(r.pid, r.call) for r in records] == [
            (100, "read"), (200, "close")]

    def test_matches_batch_parse_of_final_file(self, tmp_path):
        content = LINE_A + UNFINISHED + OTHER_PID + RESUMED + LINE_B[:0]
        path, tail = _tail(tmp_path)
        records = []
        for i in range(0, len(content), 37):  # odd chunk size
            with open(path, "ab") as h:
                h.write(content[i:i + 37])
            records += tail.poll()
        records += tail.finish()
        batch = read_trace_file(path)
        assert records == batch.records
        assert tail.merger.stats == batch.merge_stats


class TestDecoding:
    BAD = b"100  10:00:00.000001 read(3</a\xff>, ..., 10) = 10 <0.000005>\n"

    def test_strict_raises_on_undecodable_bytes(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(self.BAD)
        with pytest.raises(TraceParseError, match="undecodable"):
            tail.poll()

    def test_lenient_counts_replacements(self, tmp_path):
        path = tmp_path / "a_host1_1.st"
        path.write_bytes(self.BAD)
        tail = FileTail(path, strict=False)
        (record,) = tail.poll()
        assert record.call == "read"
        assert tail.merger.stats.decode_replacements == 1

    def test_lineno_cumulative_across_polls(self, tmp_path):
        path, tail = _tail(tmp_path)
        path.write_bytes(LINE_A)
        tail.poll()
        with open(path, "ab") as h:
            h.write(b"garbage without a header\n")
        with pytest.raises(TraceParseError) as excinfo:
            tail.poll()
        assert excinfo.value.lineno == 2

"""Windowed (bounded-memory) statistics vs the exact accumulators.

``LiveIngest(window=N)`` / ``watch --window N`` caps every per-case
interval buffer at N entries by merging adjacent intervals. The
contract, hypothesis-pinned here:

- when no buffer ever exceeds the window, windowed output is
  **field-identical** to unwindowed (coarsening never ran);
- when coarsening does run, every *scalar* statistic — event count,
  durations, bytes, Load, the Eq. 13 mean data rate — stays
  **bit-identical** to the exact road (the rates fold through the same
  exact partial sums either way); only ``max_concurrency`` and the
  Eq. 15 timeline degrade, to an upper bound / merged rows, and the
  result says so via ``approximate`` (rendered as ``DR: ~Nx...``);
- the windowed state survives checkpoint roundtrips bit-identically.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._util.errors import ReproError
from repro.core.statistics import StatsAccumulator
from repro.live.engine import LiveIngest

from test_statistics_live import (  # noqa: E402 - suite-local helpers
    _replay,
    assert_stats_equal,
    batch_statistics,
)

#: Growth schedule, as in test_statistics_live.
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=100),
              st.booleans()),
    min_size=1, max_size=30)


def assert_scalars_bit_identical(windowed, exact) -> None:
    """Every ActivityStats field except the concurrency-derived ones
    must match bit-for-bit; ``max_concurrency`` may only go up."""
    assert windowed.activities() == exact.activities()
    assert windowed.total_duration_us == exact.total_duration_us
    for activity in exact.activities():
        w, e = windowed[activity], exact[activity]
        assert w.event_count == e.event_count, activity
        assert w.total_dur_us == e.total_dur_us, activity
        assert w.relative_duration == e.relative_duration, activity
        assert w.total_bytes == e.total_bytes, activity
        assert w.has_transfers == e.has_transfers, activity
        assert w.process_data_rate == e.process_data_rate, activity
        assert w.ranks == e.ranks and w.cases == e.cases, activity
        assert w.max_concurrency >= e.max_concurrency, activity


class TestWindowNeverExceeded:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps)
    def test_huge_window_is_field_identical_to_exact(self, schedule,
                                                     ior_file_bytes):
        """A window no buffer reaches must be a no-op: field-exact
        equality with batch, `approximate` never set."""
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch)
            engine = _replay(ior_file_bytes, schedule,
                             live_dir=live_dir,
                             engine=LiveIngest(live_dir, window=10_000))
            computed = engine.statistics()
            assert_stats_equal(computed, batch_statistics(live_dir))
            assert not any(computed[a].approximate
                           for a in computed.activities())


class TestWindowExceeded:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps,
           window=st.integers(min_value=2, max_value=8))
    def test_scalars_stay_bit_identical(self, schedule, window,
                                        ior_file_bytes):
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch)
            engine = _replay(ior_file_bytes, schedule,
                             live_dir=live_dir,
                             engine=LiveIngest(live_dir, window=window))
            assert_scalars_bit_identical(engine.statistics(),
                                         batch_statistics(live_dir))

    def test_coarsened_activity_is_marked_approximate(self, tmp_path,
                                                      ior_file_bytes):
        for name, content in ior_file_bytes.items():
            (tmp_path / name).write_bytes(content)
        engine = LiveIngest(tmp_path, window=2)
        engine.poll()
        engine.finalize()
        computed = engine.statistics()
        coarse = [a for a in computed.activities()
                  if computed[a].approximate]
        assert coarse, "window=2 over an IOR run must coarsen"
        # The render contract: approximate concurrency carries a '~'.
        marked = [a for a in coarse
                  if computed[a].dr_label is not None]
        assert all("~" in computed[a].dr_label for a in marked)
        assert marked, "some coarse activity has a data rate"

    def test_buffers_stay_bounded(self, tmp_path, ior_file_bytes):
        window = 4
        for name, content in ior_file_bytes.items():
            (tmp_path / name).write_bytes(content)
        engine = LiveIngest(tmp_path, window=window)
        engine.poll()
        engine.finalize()
        for acc in engine.stats._activities.values():
            for case, buffer in acc._case_timelines.items():
                assert len(buffer) <= window, (acc.activity, case)


class TestWindowedCheckpoints:
    def test_windowed_state_roundtrips_exactly(self, tmp_path,
                                               ior_file_bytes):
        for name, content in ior_file_bytes.items():
            (tmp_path / name).write_bytes(content)
        engine = LiveIngest(tmp_path, window=4)
        engine.poll()
        engine.finalize()
        revived = StatsAccumulator.from_state(
            json.loads(json.dumps(engine.stats.to_state())), window=4)
        order = engine._case_order()
        assert_stats_equal(revived.statistics(case_order=order),
                           engine.stats.statistics(case_order=order))

    def test_window_applies_to_restored_unwindowed_sidecar(
            self, tmp_path, ior_file_bytes):
        """Resuming an unwindowed checkpoint *with* a window coarsens
        the oversized buffers on load — scalars still exact."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        for name, content in ior_file_bytes.items():
            (trace_dir / name).write_bytes(content)
        sidecar = tmp_path / "ckpt.json"
        first = LiveIngest(trace_dir, checkpoint=sidecar)
        first.poll()
        first.save_checkpoint()
        revived = LiveIngest(trace_dir, checkpoint=sidecar, window=3)
        for acc in revived.stats._activities.values():
            for buffer in acc._case_timelines.values():
                assert len(buffer) <= 3
        assert_scalars_bit_identical(revived.statistics(),
                                     first.statistics())

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps,
           restart_after=st.integers(min_value=0, max_value=29))
    def test_kill_restart_keeps_scalars_exact(self, schedule,
                                              restart_after,
                                              ior_file_bytes):
        with tempfile.TemporaryDirectory() as scratch:
            live_dir = Path(scratch) / "traces"
            live_dir.mkdir()
            sidecar = Path(scratch) / "ckpt.json"
            engine = LiveIngest(live_dir, checkpoint=sidecar, window=4)
            names = sorted(ior_file_bytes)
            offsets = {name: 0 for name in names}
            for step_index, (file_index, percent, poll) \
                    in enumerate(schedule):
                name = names[file_index % len(names)]
                content = ior_file_bytes[name]
                remaining = len(content) - offsets[name]
                chunk = max(1, remaining * percent // 100) \
                    if remaining else 0
                if chunk:
                    with open(live_dir / name, "ab") as handle:
                        handle.write(
                            content[offsets[name]:offsets[name] + chunk])
                    offsets[name] += chunk
                if poll:
                    engine.poll()
                if step_index == min(restart_after, len(schedule) - 1):
                    engine.save_checkpoint()
                    engine = LiveIngest(live_dir, checkpoint=sidecar,
                                        window=4)
            for name in names:
                tail = ior_file_bytes[name][offsets[name]:]
                if tail:
                    with open(live_dir / name, "ab") as handle:
                        handle.write(tail)
            engine.poll()
            engine.finalize()
            assert_scalars_bit_identical(engine.statistics(),
                                         batch_statistics(live_dir))


class TestValidation:
    def test_window_below_two_rejected_by_accumulator(self):
        with pytest.raises(ValueError, match="window"):
            StatsAccumulator(window=1)

    def test_window_below_two_rejected_by_engine(self, tmp_path):
        with pytest.raises(ReproError, match="window"):
            LiveIngest(tmp_path, window=1)

    def test_cli_rejects_bad_window(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["watch", str(tmp_path), "--once", "--window", "1"])
        assert excinfo.value.code == 2
        assert "must be >= 2" in capsys.readouterr().err

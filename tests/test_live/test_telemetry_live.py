"""Telemetry woven through the live path: instrumented polls,
checkpoint v5 persistence, the watch loop, and the property that makes
the whole subsystem admissible — observing the pipeline must not
perturb it (telemetry on vs off is byte-identical)."""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._util.errors import ReproError
from repro.alerts import AlertEngine, NewEdgeRule, StatThresholdRule
from repro.cli import main
from repro.live.checkpoint import CHECKPOINT_VERSION
from repro.live.engine import LiveIngest
from repro.live.watch import run_watch
from repro.telemetry import NULL_TELEMETRY, Telemetry


def _write_all(directory: Path, file_bytes: dict[str, bytes]) -> None:
    for filename, content in file_bytes.items():
        (directory / filename).write_bytes(content)


class TestInstrumentedEngine:
    def test_default_engine_is_uninstrumented(self, tmp_path):
        assert LiveIngest(tmp_path).telemetry is NULL_TELEMETRY

    def test_poll_counts_and_times_the_phases(self, tmp_path,
                                              ls_file_bytes):
        _write_all(tmp_path, ls_file_bytes)
        telemetry = Telemetry()
        engine = LiveIngest(tmp_path, telemetry=telemetry)
        result = engine.poll()
        registry = telemetry.registry
        assert registry.counter("polls_total").value == 1
        assert registry.counter("events_sealed_total").value == \
            result.n_sealed > 0
        assert registry.counter("files_discovered_total").value == \
            len(ls_file_bytes)
        assert registry.counter("bytes_tailed_total").value == \
            sum(len(b) for b in ls_file_bytes.values())
        assert registry.gauge("files_tracked").value == \
            len(ls_file_bytes)
        # Every pipeline phase fed the cumulative histograms.
        for phase in ("scan", "tail", "decode", "seal", "fold"):
            assert registry.histogram("phase_seconds",
                                      phase=phase).count > 0, phase
            assert registry.counter("phase_cpu_seconds_total",
                                    phase=phase).value >= 0

    def test_finalize_counts(self, tmp_path, ls_file_bytes):
        _write_all(tmp_path, ls_file_bytes)
        telemetry = Telemetry()
        engine = LiveIngest(tmp_path, telemetry=telemetry)
        engine.poll()
        engine.finalize()
        assert telemetry.registry.counter("finalizes_total").value == 1

    def test_statistics_phase_recorded(self, tmp_path, ls_file_bytes):
        _write_all(tmp_path, ls_file_bytes)
        telemetry = Telemetry()
        engine = LiveIngest(tmp_path, telemetry=telemetry)
        engine.poll()
        engine.statistics()
        assert telemetry.registry.histogram("phase_seconds",
                                            phase="stats").count == 1

    def test_alert_evaluation_feeds_the_registry(self, tmp_path,
                                                 ls_file_bytes):
        _write_all(tmp_path, ls_file_bytes)
        telemetry = Telemetry()
        alerts = AlertEngine([NewEdgeRule("edges")])
        engine = LiveIngest(tmp_path, alerts=alerts,
                            telemetry=telemetry)
        fired = alerts.evaluate(engine, engine.poll())
        assert fired
        registry = telemetry.registry
        assert registry.counter("alerts_fired_total").value == \
            len(fired)
        assert registry.histogram("phase_seconds",
                                  phase="alerts").count == 1

    def test_failing_sink_counts_per_sink(self, tmp_path,
                                          ls_file_bytes, recwarn):
        class Boom:
            def emit(self, alert):
                raise RuntimeError("pager down")

        _write_all(tmp_path, ls_file_bytes)
        telemetry = Telemetry()
        alerts = AlertEngine([NewEdgeRule("edges")], sinks=[Boom()])
        engine = LiveIngest(tmp_path, alerts=alerts,
                            telemetry=telemetry)
        fired = alerts.evaluate(engine, engine.poll())
        registry = telemetry.registry
        assert registry.counter("sink_failures_total",
                                sink="Boom#0").value == len(fired)
        assert registry.gauge("sink_failure_streak").value == \
            len(fired)
        # Delivery latency was timed per sink, failures included.
        assert registry.histogram("sink_seconds",
                                  sink="Boom#0").count == len(fired)
        # The warning rate limiter's suppression tally is mirrored.
        suppressed = registry.counter_sum(
            "sink_warnings_suppressed_total")
        warned = sum(1 for _ in recwarn.list)
        assert warned + suppressed >= len(fired)


class TestCheckpointV5:
    def _checkpointed(self, tmp_path, ls_file_bytes,
                      telemetry=None) -> Path:
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir(exist_ok=True)
        _write_all(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        engine = LiveIngest(trace_dir, checkpoint=sidecar,
                            telemetry=telemetry)
        engine.poll()
        engine.save_checkpoint()
        return sidecar

    def test_instrumented_save_persists_the_snapshot(self, tmp_path,
                                                     ls_file_bytes):
        sidecar = self._checkpointed(tmp_path, ls_file_bytes,
                                     Telemetry())
        state = json.loads(sidecar.read_text())
        assert state["version"] == CHECKPOINT_VERSION == 6
        snapshot = state["telemetry"]["snapshot"]
        counters = {e["name"]: e["value"]
                    for e in snapshot["counters"]}
        assert counters["polls_total"] == 1
        # The snapshot is taken inside the save: this save isn't
        # counted yet (the counter increments after the write lands).
        assert counters.get("checkpoint_saves_total", 0) == 0

    def test_uninstrumented_save_persists_none(self, tmp_path,
                                               ls_file_bytes):
        sidecar = self._checkpointed(tmp_path, ls_file_bytes)
        state = json.loads(sidecar.read_text())
        assert state["version"] == 6
        assert state["telemetry"] is None

    def test_restart_restores_counter_bases(self, tmp_path,
                                            ls_file_bytes):
        sidecar = self._checkpointed(tmp_path, ls_file_bytes,
                                     Telemetry())
        revived = Telemetry()
        engine = LiveIngest(tmp_path / "traces", checkpoint=sidecar,
                            telemetry=revived)
        registry = revived.registry
        assert registry.counter("polls_total").value == 1  # base only
        engine.poll()  # idle — nothing new
        assert registry.counter("polls_total").value == 2
        assert registry.counter("events_sealed_total").value == \
            engine.total_events

    def test_telemetry_state_survives_an_uninstrumented_life(
            self, tmp_path, ls_file_bytes):
        """Life 1 instrumented, life 2 plain, life 3 instrumented:
        the plain life must re-save life 1's snapshot, not erase it
        (the alert-state preservation rule, applied to telemetry)."""
        sidecar = self._checkpointed(tmp_path, ls_file_bytes,
                                     Telemetry())
        plain = LiveIngest(tmp_path / "traces", checkpoint=sidecar)
        plain.poll()
        plain.save_checkpoint()
        state = json.loads(sidecar.read_text())
        assert state["telemetry"]["snapshot"] is not None
        third = Telemetry()
        LiveIngest(tmp_path / "traces", checkpoint=sidecar,
                   telemetry=third)
        assert third.registry.counter("polls_total").value == 1

    def test_v4_sidecar_migrates_in_place(self, tmp_path,
                                          ls_file_bytes):
        """A pre-telemetry sidecar loads (empty telemetry state) and
        the next save rewrites it as v5."""
        sidecar = self._checkpointed(tmp_path, ls_file_bytes)
        state = json.loads(sidecar.read_text())
        state["version"] = 4
        del state["telemetry"]
        sidecar.write_text(json.dumps(state))
        telemetry = Telemetry()
        engine = LiveIngest(tmp_path / "traces", checkpoint=sidecar,
                            telemetry=telemetry)
        # Nothing restored — v4 carried no telemetry — but the load
        # succeeded and the engine state is intact.
        assert telemetry.registry.counter("polls_total").value == 0
        assert engine.total_events > 0
        engine.poll()
        engine.save_checkpoint()
        upgraded = json.loads(sidecar.read_text())
        assert upgraded["version"] == 6
        assert upgraded["telemetry"]["snapshot"] is not None


class TestWatchIntegration:
    def test_telemetry_row_present_only_when_instrumented(
            self, tmp_path, ls_file_bytes):
        _write_all(tmp_path, ls_file_bytes)
        plain: list[str] = []
        run_watch(LiveIngest(tmp_path), polls=1, out=plain.append,
                  sleep=lambda _: None)
        assert "TELEMETRY" not in "".join(plain)
        instrumented: list[str] = []
        run_watch(LiveIngest(tmp_path, telemetry=Telemetry()),
                  polls=1, out=instrumented.append,
                  sleep=lambda _: None)
        text = "".join(instrumented)
        assert "TELEMETRY: poll " in text
        assert "ms wall / " in text

    def test_metrics_flags_require_instrumentation(self, tmp_path):
        with pytest.raises(ReproError, match="instrumented engine"):
            run_watch(LiveIngest(tmp_path), polls=1,
                      metrics_log=tmp_path / "m.jsonl",
                      out=lambda _: None, sleep=lambda _: None)

    def test_metrics_log_appends_one_snapshot_per_poll(self, tmp_path,
                                                       ls_file_bytes):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        log = tmp_path / "metrics.jsonl"
        run_watch(LiveIngest(trace_dir, telemetry=Telemetry()),
                  polls=3, interval=0, metrics_log=log,
                  out=lambda _: None, sleep=lambda _: None)
        rows = [json.loads(line)
                for line in log.read_text().splitlines()]
        assert len(rows) == 3
        assert [row["last_poll"]["n_poll"] for row in rows] == \
            [1, 2, 3]

    def test_metrics_port_serves_during_the_watch(self, tmp_path,
                                                  ls_file_bytes):
        """Ephemeral-port e2e: scrape /metrics and /healthz from
        inside an out() callback, while the loop is alive."""
        _write_all(tmp_path, ls_file_bytes)
        scraped: dict[str, bytes] = {}
        announced: list[str] = []

        def out(text: str) -> None:
            if text.startswith("serving metrics on "):
                announced.append(text)
                return
            if "bases" not in scraped and announced:
                base = announced[0].split("on ", 1)[1].split(
                    "/metrics", 1)[0]
                scraped["bases"] = base.encode()
                for path in ("/metrics", "/healthz"):
                    with urllib.request.urlopen(base + path,
                                                timeout=5) as reply:
                        scraped[path] = reply.read()

        run_watch(LiveIngest(tmp_path, telemetry=Telemetry()),
                  polls=1, metrics_port=0, out=out,
                  sleep=lambda _: None)
        assert b"st_inspector_polls_total 1" in scraped["/metrics"]
        assert json.loads(scraped["/healthz"])["status"] == "ok"

    def test_overrun_line_carries_the_phase_breakdown(self, tmp_path,
                                                      ls_file_bytes):
        _write_all(tmp_path, ls_file_bytes)
        now = [0.0]
        events: list[str] = []

        def out(text: str) -> None:
            if text.startswith("OVERRUN"):
                events.append(text)
            else:
                now[0] += 1.5  # every render blows the 1s interval

        run_watch(LiveIngest(tmp_path, telemetry=Telemetry()),
                  interval=1.0, polls=2, out=out,
                  sleep=lambda _: None, clock=lambda: now[0])
        assert len(events) == 1
        assert events[0].startswith(
            "OVERRUN poll 1: work exceeded the 1s interval by 0.500s")
        # Telemetry was on: the line names where the time went.
        assert "re-anchored (" in events[0]
        assert "s)" in events[0]


class TestHealthCommand:
    def test_health_from_instrumented_checkpoint(self, tmp_path,
                                                 ls_file_bytes,
                                                 capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        log = tmp_path / "metrics.jsonl"
        assert main(["watch", str(trace_dir), "--once",
                     "--checkpoint", str(sidecar),
                     "--metrics-log", str(log)]) == 0
        capsys.readouterr()
        assert main(["health", str(sidecar)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("status: ok")
        assert "sealing" in out
        assert main(["health", str(sidecar), "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["status"] == "ok"

    def test_health_refuses_an_uninstrumented_checkpoint(
            self, tmp_path, ls_file_bytes, capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_all(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        assert main(["watch", str(trace_dir), "--once",
                     "--checkpoint", str(sidecar)]) == 0
        capsys.readouterr()
        assert main(["health", str(sidecar)]) == 2
        assert "no telemetry snapshot" in capsys.readouterr().err


#: The adversary from test_live_properties, reused for neutrality:
#: (file index, percent of remaining bytes, poll-after?).
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=100),
              st.booleans()),
    min_size=1, max_size=20)


def _rules() -> AlertEngine:
    return AlertEngine([
        NewEdgeRule("edges"),
        StatThresholdRule("busy", metric="event_count", op=">",
                          value=5),
    ])


def _replay(file_bytes: dict[str, bytes], schedule, *, scratch: Path,
            telemetry, restart_after: int | None = None):
    """Grow a fresh directory per the schedule — polling, evaluating
    alerts, checkpointing, optionally killing/reviving — and return
    ``(engine, alert identity multiset, live_dir)``."""
    live_dir = scratch / "traces"
    live_dir.mkdir()
    sidecar = scratch / "ckpt.json"
    alerts = _rules()
    engine = LiveIngest(live_dir, checkpoint=sidecar, alerts=alerts,
                        telemetry=telemetry)
    fired: list[tuple] = []
    names = sorted(file_bytes)
    offsets = {name: 0 for name in names}
    for step_index, (file_index, percent, poll) in enumerate(schedule):
        name = names[file_index % len(names)]
        content = file_bytes[name]
        remaining = len(content) - offsets[name]
        chunk = max(1, remaining * percent // 100) if remaining else 0
        if chunk:
            with open(live_dir / name, "ab") as handle:
                handle.write(
                    content[offsets[name]:offsets[name] + chunk])
            offsets[name] += chunk
        if poll:
            result = engine.poll()
            fired.extend((a.rule, a.kind, a.subject)
                         for a in alerts.evaluate(engine, result))
            engine.save_checkpoint()
        if restart_after is not None and step_index == restart_after:
            engine.save_checkpoint()
            alerts = _rules()
            telemetry = (Telemetry() if telemetry is not None
                         else None)
            engine = LiveIngest(live_dir, checkpoint=sidecar,
                                alerts=alerts, telemetry=telemetry)
    for name in names:
        tail = file_bytes[name][offsets[name]:]
        if tail:
            with open(live_dir / name, "ab") as handle:
                handle.write(tail)
    result = engine.poll()
    fired.extend((a.rule, a.kind, a.subject)
                 for a in alerts.evaluate(engine, result))
    engine.finalize()
    return engine, sorted(fired), live_dir


def _assert_same_statistics(one: LiveIngest, other: LiveIngest) -> None:
    stats_one = one.statistics()
    stats_other = other.statistics()
    assert sorted(stats_one.activities()) == \
        sorted(stats_other.activities())
    for activity in stats_one.activities():
        assert stats_one[activity] == stats_other[activity], activity


class TestObserverNeutrality:
    """Telemetry on vs off: same schedule, byte-identical pipeline."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps)
    def test_instrumented_run_is_byte_identical(self, schedule,
                                                ior_file_bytes,
                                                logs_identical):
        with tempfile.TemporaryDirectory() as off_dir, \
                tempfile.TemporaryDirectory() as on_dir:
            off, off_fired, _ = _replay(
                ior_file_bytes, schedule, scratch=Path(off_dir),
                telemetry=None)
            on, on_fired, _ = _replay(
                ior_file_bytes, schedule, scratch=Path(on_dir),
                telemetry=Telemetry())
            assert off.snapshot_dfg() == on.snapshot_dfg()
            logs_identical(off.snapshot_log(), on.snapshot_log())
            _assert_same_statistics(off, on)
            assert off_fired == on_fired

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps,
           restart_after=st.integers(min_value=0, max_value=19))
    def test_neutral_across_kill_restart(self, schedule, restart_after,
                                         ior_file_bytes):
        """Kill + revive at a random point: the instrumented pair of
        lives converges on the same DFG/statistics/alert multiset as
        the uninstrumented pair (logs are per-life, so the frame
        assertion does not apply — same as the base property)."""
        restart_after = min(restart_after, len(schedule) - 1)
        with tempfile.TemporaryDirectory() as off_dir, \
                tempfile.TemporaryDirectory() as on_dir:
            off, off_fired, _ = _replay(
                ior_file_bytes, schedule, scratch=Path(off_dir),
                telemetry=None, restart_after=restart_after)
            on, on_fired, _ = _replay(
                ior_file_bytes, schedule, scratch=Path(on_dir),
                telemetry=Telemetry(), restart_after=restart_after)
            assert off.snapshot_dfg() == on.snapshot_dfg()
            _assert_same_statistics(off, on)
            assert off_fired == on_fired

"""Soak smoke: week-long-watcher memory stays bounded under --window.

Tier-2 (``--run-slow``). Feeds a six-figure event stream through the
statistics accumulators and a long poll schedule through a LiveIngest,
and asserts the bounded-memory claims directly: with a window, live
heap (tracemalloc) and checkpoint size are a small fraction of the
unbounded run's, and per-case buffers never exceed the window.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.core.statistics import StatsAccumulator
from repro.live.engine import LiveIngest

N_EVENTS = 100_000
WINDOW = 64


def _feed(accumulator: StatsAccumulator, n_events: int) -> None:
    """Disjoint intervals: every event grows the exact buffer by 1."""
    feed = accumulator.feed_event
    for i in range(n_events):
        feed("read:/data", "job_h_1", rid=1, start_us=10 * i,
             dur_us=5, size=100)


def _traced_feed(n_events: int, window: int | None) -> int:
    """Net heap bytes held by a fed accumulator, via tracemalloc."""
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        accumulator = StatsAccumulator(window=window)
        _feed(accumulator, n_events)
        after, _ = tracemalloc.get_traced_memory()
        assert accumulator is not None
        return after - before
    finally:
        tracemalloc.stop()


@pytest.mark.slow
class TestAccumulatorSoak:
    def test_windowed_heap_is_a_fraction_of_unbounded(self):
        unbounded = _traced_feed(N_EVENTS, window=None)
        windowed = _traced_feed(N_EVENTS, window=WINDOW)
        # The unbounded run holds one interval tuple per event; the
        # windowed run holds at most WINDOW per case. Allow generous
        # slack for allocator noise — an order of magnitude is the
        # point, not a constant factor.
        assert windowed < unbounded / 10, (windowed, unbounded)

    def test_windowed_state_stays_small_and_scalars_exact(self):
        exact = StatsAccumulator()
        windowed = StatsAccumulator(window=WINDOW)
        _feed(exact, N_EVENTS)
        _feed(windowed, N_EVENTS)
        small = len(json.dumps(windowed.to_state()))
        large = len(json.dumps(exact.to_state()))
        assert small < large / 100, (small, large)
        order = ("job_h_1",)
        w = windowed.statistics(case_order=order)["read:/data"]
        e = exact.statistics(case_order=order)["read:/data"]
        assert w.event_count == e.event_count == N_EVENTS
        assert w.total_bytes == e.total_bytes
        assert w.process_data_rate == e.process_data_rate  # bit-exact
        assert w.approximate and not e.approximate


@pytest.mark.slow
class TestWatcherSoak:
    def _lines(self, start: int, count: int) -> bytes:
        rows = []
        for i in range(start, start + count):
            stamp_us = i * 1000  # one event per millisecond
            minute, rest = divmod(stamp_us, 60_000_000)
            second, micro = divmod(rest, 1_000_000)
            rows.append(
                f"77  08:{minute:02d}:{second:02d}.{micro:06d}"
                f" read(3</data/file>, ..., 100) = 100 <0.000050>"
                .encode())
        return b"\n".join(rows) + b"\n"

    def test_checkpoint_size_is_bounded_under_window(self, tmp_path):
        polls = 40
        batch = 500  # events appended between polls
        sizes = {}
        for label, window in (("unbounded", None),
                              ("windowed", WINDOW)):
            trace_dir = tmp_path / label
            trace_dir.mkdir()
            sidecar = tmp_path / f"{label}.json"
            engine = LiveIngest(trace_dir, checkpoint=sidecar,
                                keep_records=False, window=window)
            trace = trace_dir / "job_host1_7.st"
            for poll in range(polls):
                with open(trace, "ab") as handle:
                    handle.write(self._lines(poll * batch, batch))
                engine.poll()
                engine.save_checkpoint()
            sizes[label] = sidecar.stat().st_size
            if window is not None:
                for acc in engine.stats._activities.values():
                    for buffer in acc._case_timelines.values():
                        assert len(buffer) <= window
        assert sizes["windowed"] < sizes["unbounded"] / 20, sizes

    def test_journal_disk_stays_bounded_under_compaction(self,
                                                         tmp_path):
        """ROADMAP 5b's disk claim, at soak scale: with
        ``compact_emit``, the journal's on-disk footprint after each
        checkpoint save is bounded by one poll batch (+ header) for
        the whole run, while events — and the packed ``.elog`` —
        keep growing."""
        polls = 40
        batch = 500
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        elog = tmp_path / "run.elog"
        journal = elog.with_name(elog.name + ".journal")
        engine = LiveIngest(trace_dir, keep_records=False,
                            window=WINDOW, emit=elog,
                            checkpoint=tmp_path / "ckpt.json",
                            compact_emit=1)
        trace = trace_dir / "job_host1_7.st"
        journal_high_water = 0
        elog_sizes = []
        for poll in range(polls):
            with open(trace, "ab") as handle:
                handle.write(self._lines(poll * batch, batch))
            engine.poll()
            engine.save_checkpoint()
            journal_high_water = max(journal_high_water,
                                     journal.stat().st_size)
            elog_sizes.append(elog.stat().st_size)
        # O(window): the journal never held more than ~one batch of
        # records; total journaled events are 40x that. The packed
        # destination carried the growth instead.
        one_batch_journaled = 2 * batch * 120  # ~record line bytes
        assert journal_high_water < one_batch_journaled, \
            journal_high_water
        assert elog_sizes[-1] > elog_sizes[0]
        assert elog_sizes == sorted(elog_sizes)
        assert journal.stat().st_size < 256  # header-only at rest

"""Integration tests asserting the paper's figure-level results.

Each class reproduces one figure end to end (simulate → strace text →
parse → event-log → DFG/statistics) and asserts the *shape* the paper
reports: exact combinatorial counts where the paper's figures pin them
(Fig. 3/4), orderings and ratio bounds for the testbed-dependent IOR
results (Fig. 8/9). EXPERIMENTS.md records the numbers side by side.

Reduced rank counts keep this suite fast; the full 96-rank
reproduction lives in ``benchmarks/``.
"""

import pytest

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.coloring import PartitionColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import (
    CallPathTail,
    CallTopDirs,
    RestrictedMapping,
    SiteVariables,
)
from repro.core.partition import PartitionEL
from repro.core.statistics import IOStatistics
from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    EXPERIMENT_B_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import (
    IORConfig,
    JUWELS_SITE_VARIABLES,
    simulate_ior,
)


class TestFig3DFGs:
    """Fig. 3: the ls / ls -l DFGs with exact edge counts."""

    @pytest.fixture()
    def logs(self, ls_sim_dir):
        mapping = CallTopDirs(levels=2)
        ca = EventLog.from_source(ls_sim_dir, cids={"a"}) \
            .with_mapping(mapping)
        cb = EventLog.from_source(ls_sim_dir, cids={"b"}) \
            .with_mapping(mapping)
        cx = EventLog.from_source(ls_sim_dir).with_mapping(mapping)
        return ca, cb, cx

    def test_fig3b_ls_dfg(self, logs):
        ca, _, _ = logs
        dfg = DFG(ca)
        assert dfg.activities() == {
            "read:/usr/lib", "read:/proc/filesystems",
            "read:/etc/locale.alias", "write:/dev/pts"}
        # The figure's edge numbers, exactly:
        assert dfg.edge_count(START_ACTIVITY, "read:/usr/lib") == 3
        assert dfg.edge_count("read:/usr/lib", "read:/usr/lib") == 6
        assert dfg.edge_count("read:/usr/lib",
                              "read:/proc/filesystems") == 3
        assert dfg.edge_count("read:/proc/filesystems",
                              "read:/proc/filesystems") == 3
        assert dfg.edge_count("read:/proc/filesystems",
                              "read:/etc/locale.alias") == 3
        assert dfg.edge_count("read:/etc/locale.alias",
                              "read:/etc/locale.alias") == 3
        assert dfg.edge_count("read:/etc/locale.alias",
                              "write:/dev/pts") == 3
        assert dfg.edge_count("write:/dev/pts", END_ACTIVITY) == 3

    def test_fig3c_ls_l_dfg(self, logs):
        _, cb, _ = logs
        dfg = DFG(cb)
        assert dfg.activities() == {
            "read:/usr/lib", "read:/proc/filesystems",
            "read:/etc/locale.alias", "read:/etc/nsswitch.conf",
            "read:/etc/passwd", "read:/etc/group", "write:/dev/pts",
            "read:/usr/share"}
        assert dfg.edge_count("read:/usr/lib", "read:/usr/lib") == 6
        assert dfg.edge_count("read:/etc/nsswitch.conf",
                              "read:/etc/nsswitch.conf") == 3
        assert dfg.edge_count("read:/etc/passwd", "read:/etc/group") == 3
        assert dfg.edge_count("write:/dev/pts", "write:/dev/pts") == 6
        assert dfg.edge_count("read:/usr/share", "read:/usr/share") == 3
        assert dfg.edge_count("write:/dev/pts", END_ACTIVITY) == 3

    def test_fig3d_combined_dfg_and_coloring(self, logs):
        ca, cb, cx = logs
        dfg_x = DFG(cx)
        # Union property: G[L(Cx)] = G[L(Ca)] ∪ G[L(Cb)].
        assert dfg_x == DFG(ca) | DFG(cb)
        # Combined counts from the figure: 6 on shared self-loop ×2.
        assert dfg_x.edge_count("read:/usr/lib", "read:/usr/lib") == 12
        assert dfg_x.edge_count(START_ACTIVITY, "read:/usr/lib") == 6
        coloring = PartitionColoring(DFG(ca), DFG(cb))
        summary = coloring.summary()
        assert summary["red_nodes"] == [
            "read:/etc/group", "read:/etc/nsswitch.conf",
            "read:/etc/passwd", "read:/usr/share"]
        assert summary["green_nodes"] == []
        assert summary["green_edges"] == [
            ("read:/etc/locale.alias", "write:/dev/pts")]


class TestFig4FilteredDFG:
    """Fig. 4: restrict to /usr/lib with a file-level mapping."""

    def test_three_node_chain_with_weight_six(self, ls_sim_dir):
        log = EventLog.from_source(ls_sim_dir)
        log.apply_fp_filter("/usr/lib")
        log.apply_mapping_fn(CallPathTail(levels=2))
        dfg = DFG(log)
        selinux = "read:x86_64-linux-gnu/libselinux.so.1"
        libc = "read:x86_64-linux-gnu/libc.so.6"
        pcre = "read:x86_64-linux-gnu/libpcre2-8.so.0.10.4"
        assert dfg.activities() == {selinux, libc, pcre}
        # All six cases traverse the chain once → every edge weight 6.
        assert dfg.edge_count(START_ACTIVITY, selinux) == 6
        assert dfg.edge_count(selinux, libc) == 6
        assert dfg.edge_count(libc, pcre) == 6
        assert dfg.edge_count(pcre, END_ACTIVITY) == 6

    def test_restricted_mapping_equivalent_to_filter(self, ls_sim_dir):
        """The paper's f₁ (mapping-level restriction) and the fp filter
        (log-level restriction) must synthesize the same DFG."""
        filtered = EventLog.from_source(ls_sim_dir)
        filtered.apply_fp_filter("/usr/lib")
        filtered.apply_mapping_fn(CallPathTail(levels=2))

        restricted = EventLog.from_source(ls_sim_dir)
        restricted.apply_mapping_fn(RestrictedMapping(
            CallPathTail(levels=2), fp_substring="/usr/lib"))
        assert DFG(filtered) == DFG(restricted)


@pytest.fixture(scope="module")
def fig8_logs(tmp_path_factory):
    """Reduced Fig. 8 run: 24 ranks over 2 nodes, 2 segments."""
    directory = tmp_path_factory.mktemp("fig8")
    ssf = simulate_ior(IORConfig(
        ranks=24, ranks_per_node=12, segments=2, cid="ssf",
        test_file="/p/scratch/ssf/test", seed=8801))
    fpp = simulate_ior(IORConfig(
        ranks=24, ranks_per_node=12, segments=2, cid="fpp",
        file_per_process=True, test_file="/p/scratch/fpp/test",
        base_rid=30000, seed=8802))
    write_trace_files(ssf.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS)
    write_trace_files(fpp.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS)
    return directory, ssf, fpp


class TestFig8SsfVsFpp:
    """Fig. 8: SSF vs FPP contention (orderings, not absolutes)."""

    def test_fig8a_scratch_dominates(self, fig8_logs):
        directory, _, _ = fig8_logs
        log = EventLog.from_source(directory)
        log.apply_mapping_fn(SiteVariables(JUWELS_SITE_VARIABLES))
        stats = IOStatistics(log)
        scratch_load = sum(
            stats[a].relative_duration for a in stats.activities()
            if "$SCRATCH" in a)
        assert scratch_load > 0.9
        # The preamble nodes exist but carry negligible load.
        for activity in ("openat:$SOFTWARE", "read:$SOFTWARE",
                         "openat:$HOME", "write:Node Local",
                         "openat:Node Local"):
            assert activity in stats
            assert stats[activity].relative_duration < 0.02

    def test_fig8b_load_ordering(self, fig8_logs):
        directory, _, _ = fig8_logs
        log = EventLog.from_source(directory)
        log.apply_fp_filter("/p/scratch")
        log.apply_mapping_fn(
            SiteVariables(JUWELS_SITE_VARIABLES, extra_levels=1))
        stats = IOStatistics(log)
        rd = {a: stats[a].relative_duration for a in stats.activities()}
        # Paper: openat ssf 0.54 > write ssf 0.43 >> read ssf 0.01;
        # all fpp loads tiny.
        assert rd["openat:$SCRATCH/ssf"] > rd["write:$SCRATCH/ssf"]
        assert rd["write:$SCRATCH/ssf"] > 5 * rd["read:$SCRATCH/ssf"]
        assert rd["openat:$SCRATCH/ssf"] > 10 * rd["openat:$SCRATCH/fpp"]
        assert rd["write:$SCRATCH/ssf"] > 10 * rd["write:$SCRATCH/fpp"]

    def test_fig8b_rates_and_concurrency(self, fig8_logs):
        directory, ssf, _ = fig8_logs
        ranks = ssf.config.ranks
        log = EventLog.from_source(directory)
        log.apply_fp_filter("/p/scratch")
        log.apply_mapping_fn(
            SiteVariables(JUWELS_SITE_VARIABLES, extra_levels=1))
        stats = IOStatistics(log)
        ssf_write = stats["write:$SCRATCH/ssf"]
        fpp_write = stats["write:$SCRATCH/fpp"]
        ssf_read = stats["read:$SCRATCH/ssf"]
        fpp_read = stats["read:$SCRATCH/fpp"]
        # Paper: FPP per-process write rate > SSF (3571 vs 2780 MB/s).
        assert fpp_write.process_data_rate > ssf_write.process_data_rate
        # Paper: SSF write mc = #ranks (96x); FPP well below.
        assert ssf_write.max_concurrency >= ranks - 2
        assert fpp_write.max_concurrency < ranks
        assert ssf_write.max_concurrency > fpp_write.max_concurrency
        # Paper: read rates comparable across modes (4601 vs 4465).
        ratio = ssf_read.process_data_rate / fpp_read.process_data_rate
        assert 0.7 < ratio < 1.3

    def test_fig8b_bytes_match_workload(self, fig8_logs):
        directory, ssf, _ = fig8_logs
        cfg = ssf.config
        expected = (cfg.ranks * cfg.segments * cfg.block_size)
        log = EventLog.from_source(directory)
        log.apply_fp_filter("/p/scratch")
        log.apply_mapping_fn(
            SiteVariables(JUWELS_SITE_VARIABLES, extra_levels=1))
        stats = IOStatistics(log)
        assert stats["write:$SCRATCH/ssf"].total_bytes == expected
        assert stats["read:$SCRATCH/ssf"].total_bytes == expected
        assert stats["write:$SCRATCH/fpp"].total_bytes == expected


@pytest.fixture(scope="module")
def fig9_setup(tmp_path_factory):
    """Reduced Fig. 9 run: POSIX vs MPI-IO, both SSF, 16 ranks."""
    directory = tmp_path_factory.mktemp("fig9")
    posix = simulate_ior(IORConfig(
        ranks=16, ranks_per_node=8, segments=2, cid="posix",
        test_file="/p/scratch/ssf/test", seed=9901))
    mpiio = simulate_ior(IORConfig(
        ranks=16, ranks_per_node=8, segments=2, cid="mpiio",
        api="mpiio", test_file="/p/scratch/ssf/test2",
        base_rid=40000, seed=9902))
    write_trace_files(posix.recorders, directory,
                      trace_calls=EXPERIMENT_B_CALLS)
    write_trace_files(mpiio.recorders, directory,
                      trace_calls=EXPERIMENT_B_CALLS)
    log = EventLog.from_source(directory)
    # The paper skips rendering openat in Fig. 9.
    log = log.filtered(~log.frame.call_in(["openat", "open"]))
    log.apply_mapping_fn(SiteVariables(JUWELS_SITE_VARIABLES))
    return log, posix, mpiio


class TestFig9MpiioVsPosix:
    def test_exclusive_node_sets(self, fig9_setup):
        log, _, _ = fig9_setup
        green_log, red_log = PartitionEL(log, ["mpiio"])
        coloring = PartitionColoring(DFG(green_log), DFG(red_log))
        summary = coloring.summary()
        # Paper: "MPI-IO utilizes the system calls pread64 and pwrite64
        # instead of the standard read and write."
        assert summary["green_nodes"] == [
            "pread64:$SCRATCH", "pwrite64:$SCRATCH"]
        assert "read:$SCRATCH" in summary["red_nodes"]
        assert "write:$SCRATCH" in summary["red_nodes"]
        # lseek:$SCRATCH occurs in both runs → shared.
        assert "lseek:$SCRATCH" in summary["shared_nodes"]

    def test_lseek_reduction(self, fig9_setup):
        """Paper: 'the number of lseek calls preceding file accesses is
        significantly lower in the run that uses MPI-IO'."""
        log, posix, mpiio = fig9_setup
        green_log, red_log = PartitionEL(log, ["mpiio"])
        green_lseeks = int(green_log.frame.call_in(["lseek"]).sum())
        red_lseeks = int(red_log.frame.call_in(["lseek"]).sum())
        assert red_lseeks > 5 * green_lseeks
        # In the POSIX run every transfer is preceded by a seek.
        cfg = posix.config
        transfers = cfg.ranks * cfg.segments * cfg.transfers_per_block
        scratch_lseeks = int(
            (red_log.frame.call_in(["lseek"])
             & red_log.frame.fp_contains("/p/scratch")).sum())
        assert scratch_lseeks == 2 * transfers  # writes + reads

    def test_lseek_to_transfer_edges_are_red(self, fig9_setup):
        log, _, _ = fig9_setup
        green_log, red_log = PartitionEL(log, ["mpiio"])
        coloring = PartitionColoring(DFG(green_log), DFG(red_log))
        assert coloring.classify_edge(
            ("lseek:$SCRATCH", "write:$SCRATCH")) == "red"
        assert coloring.classify_edge(
            ("lseek:$SCRATCH", "read:$SCRATCH")) == "red"

    def test_reduced_load_with_mpiio(self, fig9_setup):
        """Paper: pwrite64 load 0.21 < write 0.31; pread64 0.21 ≤
        read 0.25 — MPI-IO's fewer syscalls reduce overall duration."""
        log, posix, mpiio = fig9_setup
        stats = IOStatistics(log)
        assert stats["pwrite64:$SCRATCH"].relative_duration < \
            stats["write:$SCRATCH"].relative_duration
        assert stats["pread64:$SCRATCH"].relative_duration <= \
            stats["read:$SCRATCH"].relative_duration * 1.1
        assert mpiio.total_syscalls() < posix.total_syscalls()
        assert mpiio.makespan_us < posix.makespan_us

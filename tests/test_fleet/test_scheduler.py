"""The scheduler layer: cadence, round-robin, fault isolation."""

from __future__ import annotations

import pytest

from repro.fleet import FleetScheduler, FleetView, JobSpec, run_fleet
from repro.live.engine import LiveIngest


class FakeClock:
    """Monotonic time advanced only by sleeping (or by a test)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.naps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, delay: float) -> None:
        self.naps.append(delay)
        self.now += delay


def _poison(monkeypatch, directory):
    """Make every poll of ``directory`` raise — a job that can be
    rebuilt (the directory exists) but never completes a poll."""
    real_poll = LiveIngest.poll

    def poll(self):
        if self.directory == directory:
            raise RuntimeError("boom")
        return real_poll(self)

    monkeypatch.setattr(LiveIngest, "poll", poll)


class TestCadence:
    def test_two_jobs_interleave_on_their_own_cadences(self, job_dir):
        jobs = [
            JobSpec(source=str(job_dir("a")),
                    name="a", interval=1.0, polls=2).build(),
            JobSpec(source=str(job_dir("b")),
                    name="b", interval=2.0, polls=2).build(),
        ]
        clock = FakeClock()
        frames: list[str] = []
        code = FleetScheduler(jobs, out=frames.append,
                              sleep=clock.sleep, clock=clock,
                              view=FleetView()).run()
        assert code == 0
        # Each job sleeps to its own deadline; work costs no fake time.
        assert clock.naps == [1.0, 1.0]
        polls = [frame.split("\n", 1)[0] for frame in frames
                 if not frame.startswith("FLEET:")]
        assert [line.split(":")[0] for line in polls] == [
            "[a] poll 1", "[b] poll 1", "[a] poll 2", "[b] poll 2"]
        assert frames[0] == \
            "FLEET: a pending 0 poll(s) | b pending 0 poll(s)"
        assert frames[-1] == "FLEET: a done 2 poll(s) | b done 2 poll(s)"
        for job in jobs:
            job.close()

    def test_zero_interval_jobs_round_robin(self, job_dir):
        jobs = [
            JobSpec(source=str(job_dir("a")),
                    name="a", interval=0.0, polls=2).build(),
            JobSpec(source=str(job_dir("b")),
                    name="b", interval=0.0, polls=2).build(),
        ]
        clock = FakeClock()
        frames: list[str] = []
        FleetScheduler(jobs, out=frames.append, sleep=clock.sleep,
                       clock=clock, view=FleetView()).run()
        assert clock.naps == []  # never sleeps, never starves either
        order = [frame[1] for frame in frames
                 if not frame.startswith("FLEET:")]
        assert order == ["a", "b", "a", "b"]
        for job in jobs:
            job.close()

    def test_no_view_emits_raw_frames(self, populated_dir):
        job = JobSpec(source=str(populated_dir), polls=1).build()
        clock = FakeClock()
        frames: list[str] = []
        FleetScheduler([job], out=frames.append, sleep=clock.sleep,
                       clock=clock).run()
        assert len(frames) == 1
        assert frames[0].startswith("poll 1: ")  # no [name] prefix
        job.close()

    def test_overrun_is_reported_per_job(self, monkeypatch, job_dir):
        directory = job_dir("a")
        clock = FakeClock()
        real_poll = LiveIngest.poll

        def slow_poll(self):
            clock.now += 1.5  # one poll's work overruns the interval
            return real_poll(self)

        monkeypatch.setattr(LiveIngest, "poll", slow_poll)
        job = JobSpec(source=str(directory), name="a", interval=1.0,
                      polls=2).build()
        frames: list[str] = []
        FleetScheduler([job], out=frames.append, sleep=clock.sleep,
                       clock=clock, view=FleetView()).run()
        assert ("[a] OVERRUN poll 1: work exceeded the 1s interval by "
                "0.500s; cadence re-anchored") in frames
        job.close()


class TestFaultIsolation:
    def test_without_isolation_the_exception_propagates(
            self, monkeypatch, job_dir):
        directory = job_dir("a")
        _poison(monkeypatch, directory)
        job = JobSpec(source=str(directory), name="a").build()
        clock = FakeClock()
        with pytest.raises(RuntimeError, match="boom"):
            FleetScheduler([job], out=lambda _: None,
                           sleep=clock.sleep, clock=clock).run()
        job.close()

    def test_failed_job_backs_off_restarts_then_gives_up(
            self, monkeypatch, job_dir):
        directory = job_dir("b")
        _poison(monkeypatch, directory)
        job = JobSpec(source=str(directory), name="b",
                      interval=1.0).build()
        clock = FakeClock()
        frames: list[str] = []
        code = FleetScheduler([job], out=frames.append,
                              sleep=clock.sleep, clock=clock,
                              view=FleetView(), isolate=True,
                              max_restarts=2).run()
        assert code == 0
        events = [f for f in frames if f.startswith("[b] JOB")]
        assert events == [
            "[b] JOB FAILED: boom; restart in 1s (failure 1)",
            "[b] JOB RESTARTED (restart 1)",
            "[b] JOB FAILED: boom; restart in 2s (failure 2)",
            "[b] JOB RESTARTED (restart 2)",
            "[b] JOB STOPPED: boom; gave up after 3 consecutive "
            "failure(s)",
        ]
        # Exponential backoff from the interval: 1s, then 2s.
        assert clock.naps == [1.0, 2.0]
        assert job.state == "stopped"
        assert job.restarts == 2
        assert frames[-1] == \
            "FLEET: b stopped 0 poll(s), 3 failure(s), 2 restart(s)"
        job.close()

    def test_poisoned_sibling_leaves_healthy_job_byte_identical(
            self, monkeypatch, job_dir):
        """Fault isolation is *total*: job a's frames with a poisoned
        sibling are byte-identical to running a alone."""
        dir_a = job_dir("a")
        dir_a_solo = job_dir("a_solo")
        dir_b = job_dir("b")
        _poison(monkeypatch, dir_b)

        def spec(directory):
            return JobSpec(source=str(directory), name="a",
                           interval=1.0, polls=3)

        def frames_of_a(jobs):
            clock = FakeClock()
            frames: list[str] = []
            FleetScheduler(jobs, out=frames.append, sleep=clock.sleep,
                           clock=clock, view=FleetView(), isolate=True,
                           max_restarts=1).run()
            for job in jobs:
                job.close()
            return [f for f in frames if f.startswith("[a] ")]

        with_sibling = frames_of_a([
            spec(dir_a).build(),
            JobSpec(source=str(dir_b), name="b", interval=1.0).build(),
        ])
        alone = frames_of_a([spec(dir_a_solo).build()])
        assert with_sibling == alone


class TestRunFleet:
    def test_emit_packs_once_per_job(self, tmp_path, job_dir):
        specs = [
            JobSpec(source=str(job_dir(name)),
                    name=name, interval=0.0, polls=1,
                    emit=str(tmp_path / f"{name}.elog"))
            for name in ("a", "b")
        ]
        clock = FakeClock()
        frames: list[str] = []
        code = run_fleet([spec.build() for spec in specs],
                         out=frames.append, sleep=clock.sleep,
                         clock=clock)
        assert code == 0
        for name in ("a", "b"):
            emitted = [f for f in frames if f.startswith(
                f"[{name}] emitted event log: ")]
            assert len(emitted) == 1  # the finally does not re-pack
            assert (tmp_path / f"{name}.elog").exists()

"""The headline fleet invariant, hypothesis-pinned.

N jobs sharing one :class:`~repro.fleet.FleetScheduler` are
byte-for-byte equivalent to N independent ``run_watch`` processes:
under a randomized schedule of trace growth, poll budgets and
intervals — including a kill/restart boundary where every job is
rebuilt from its checkpoint — each job's frames (prefixes stripped),
final DFG, checkpoint sidecar bytes and emitted ``.elog`` bytes are
identical to a solo watch of an identically-growing directory.

The clock device: both runs replay the *same* absolute-time growth
schedule through a :class:`GrowthClock` — a fake monotonic clock that
applies file-growth chunks whenever sleeping crosses their timestamps.
Work costs no fake time, so a fleet polls job *j* at exactly the same
clock readings as *j*'s solo watch, and the directory bytes visible to
every poll match by construction; what the test pins is that the
*engine, scheduler and presentation* add nothing on top.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetScheduler, FleetView, JobSpec
from repro.live.watch import run_watch

RULES = """\
[[rule]]
name = "edges"
type = "new_edge"
"""

#: Restart boundary: later than any life-1 poll deadline (max budget 3
#: polls x max interval 2s = polls at 0/2/4s), earlier than the growth
#: horizon so life 2 still sees fresh bytes.
RESTART_AT = 6.0
HORIZON = 12.0


class GrowthClock:
    """Fake monotonic clock that grows trace files as time passes.

    ``chunks`` is a list of ``(t, path, size)``: at time ``t`` the
    file at ``path`` holds (at least) the first ``size`` bytes of its
    full content. Growth is applied when the clock *crosses* ``t`` —
    chunks at exactly a poll's deadline are visible to that poll, in
    the fleet and solo runs alike.
    """

    def __init__(self, chunks, file_bytes) -> None:
        self._pending = sorted(chunks, key=lambda c: c[0])
        self._file_bytes = file_bytes
        self.now = 0.0
        self.advance_to(0.0)

    def __call__(self) -> float:
        return self.now

    def sleep(self, delay: float) -> None:
        self.advance_to(self.now + delay)

    def advance_to(self, t: float) -> None:
        while self._pending and self._pending[0][0] <= t:
            _, path, size = self._pending.pop(0)
            current = path.stat().st_size if path.exists() else 0
            if size > current:  # growth is monotonic, never truncates
                path.write_bytes(self._file_bytes[path.name][:size])
        self.now = max(self.now, t)


def _chunks_for(directory: Path, growth, file_bytes) -> list:
    names = sorted(file_bytes)
    return [(t, directory / names[idx % len(names)],
             max(1, int(len(file_bytes[names[idx % len(names)]])
                        * frac)))
            for t, idx, frac in growth]


def _spec(directory: Path, name: str, plan: dict, rules: Path,
          root: Path) -> JobSpec:
    return JobSpec(source=str(directory), name=name,
                   interval=plan["interval"],
                   rules=str(rules),
                   checkpoint=str(root / f"{name}.ckpt.json"),
                   emit=str(root / f"{name}.elog"))


def _normalize(frames: list[str]) -> list[str]:
    """Absolute emit paths differ between the two trees; the elog
    bytes are compared separately."""
    return ["emitted event log: <elog>"
            if frame.startswith("emitted event log: ") else frame
            for frame in frames]


def _strip_job(frames: list[str], name: str) -> list[str]:
    prefix = f"[{name}] "
    out = []
    for frame in frames:
        if frame.startswith("FLEET:"):
            continue
        if not frame.startswith(prefix):
            continue
        out.append("\n".join(line[len(prefix):]
                             for line in frame.rstrip("\n").split("\n"))
                   + ("\n" if frame.endswith("\n") else ""))
    return _normalize(out)


def _run_fleet_lives(root: Path, plans: dict, rules: Path,
                     file_bytes, all_chunks) -> dict:
    clock = GrowthClock(all_chunks, file_bytes)
    specs = {name: _spec(root / name, name, plan, rules, root)
             for name, plan in plans.items()}
    frames: list[str] = []
    for life, budget_key in enumerate(("polls_1", "polls_2")):
        if life == 1:
            clock.advance_to(RESTART_AT)
        jobs = [specs[name].with_overrides(
                    polls=plans[name][budget_key]).build()
                for name in plans]
        FleetScheduler(jobs, out=frames.append, sleep=clock.sleep,
                       clock=clock, view=FleetView(),
                       isolate=True).run()
        if life == 0:
            for job in jobs:  # the "kill": release every engine
                job.close()
        else:
            final = {job.name: job for job in jobs}
    return {"frames": frames, "jobs": final}


def _run_solo_lives(root: Path, name: str, plan: dict, rules: Path,
                    file_bytes, chunks) -> dict:
    clock = GrowthClock(chunks, file_bytes)
    spec = _spec(root / name, name, plan, rules, root)
    frames: list[str] = []
    for life, budget_key in enumerate(("polls_1", "polls_2")):
        if life == 1:
            clock.advance_to(RESTART_AT)
        engine = spec.build_engine()
        run_watch(engine, interval=plan["interval"],
                  polls=plan[budget_key], out=frames.append,
                  sleep=clock.sleep, clock=clock)
        if life == 0:
            engine.close()
    return {"frames": _normalize(frames), "engine": engine}


job_plans = st.fixed_dictionaries({
    "interval": st.sampled_from([1.0, 2.0]),
    "polls_1": st.integers(min_value=1, max_value=3),
    "polls_2": st.integers(min_value=1, max_value=3),
    "growth": st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=HORIZON).map(
                lambda t: round(t, 3)),
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=0.01, max_value=1.0)),
        max_size=8),
})


class TestFleetEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(plans=st.fixed_dictionaries({"app1": job_plans,
                                        "app2": job_plans}))
    def test_fleet_equals_independent_watchers(
            self, tmp_path_factory, ls_file_bytes, plans):
        root = tmp_path_factory.mktemp("equiv")
        rules = root / "rules.toml"
        rules.write_text(RULES, encoding="utf-8")
        fleet_root = root / "fleet"
        fleet_chunks = []
        for name, plan in plans.items():
            (fleet_root / name).mkdir(parents=True)
            fleet_chunks += _chunks_for(fleet_root / name,
                                        plan["growth"], ls_file_bytes)
        fleet = _run_fleet_lives(fleet_root, plans, rules,
                                 ls_file_bytes, fleet_chunks)

        for name, plan in plans.items():
            solo_root = root / f"solo_{name}"
            (solo_root / name).mkdir(parents=True)
            solo = _run_solo_lives(
                solo_root, name, plan, rules, ls_file_bytes,
                _chunks_for(solo_root / name, plan["growth"],
                            ls_file_bytes))
            job = fleet["jobs"][name]
            # 1. Frames: strip the [name] prefixes and the fleet's
            #    status lines — byte-identical to the solo watch.
            assert _strip_job(fleet["frames"], name) == solo["frames"]
            # 2. Final graph and statistics.
            assert job.engine.snapshot_dfg() == \
                solo["engine"].snapshot_dfg()
            # 3. Alert multisets (history survives the restart).
            assert [a.render_line()
                    for a in job.engine.alerts.history] == \
                [a.render_line()
                 for a in solo["engine"].alerts.history]
            # 4. Checkpoint sidecars, byte for byte (paths inside are
            #    relative to each trace dir).
            assert Path(job.spec.checkpoint).read_bytes() == \
                (solo_root / f"{name}.ckpt.json").read_bytes()
            # 5. Emitted event logs, byte for byte.
            assert Path(job.spec.emit).read_bytes() == \
                (solo_root / f"{name}.elog").read_bytes()
            job.close()
            solo["engine"].close()

"""``st-inspector fleet`` / multi-checkpoint ``health`` / exit codes."""

from __future__ import annotations

import json

from repro._util.errors import ReproError
from repro.cli import main
from repro.live.engine import LiveIngest

FAILING_SIDECAR = {
    "version": 5,
    "telemetry": {"snapshot": {
        "gauges": [{"name": "poll_overrun_streak", "value": 5}],
    }},
}


def _fleet_config(tmp_path, job_dir, names, extra=""):
    """``extra`` lines are appended inside every job table."""
    for name in names:
        job_dir(name)
    body = "".join(
        f"[jobs.{name}]\nsource = \"{name}\"\n{extra}"
        for name in names)
    config = tmp_path / "fleet.toml"
    config.write_text(body, encoding="utf-8")
    return config


class TestFleetCommand:
    def test_once_interleaves_prefixed_frames(self, tmp_path, job_dir,
                                              capsys):
        config = _fleet_config(tmp_path, job_dir, ("app1", "app2"))
        assert main(["fleet", "--jobs", str(config), "--once"]) == 0
        out = capsys.readouterr().out
        assert "[app1] poll 1: " in out
        assert "[app2] poll 1: " in out
        assert ("FLEET: app1 pending 0 poll(s) | "
                "app2 pending 0 poll(s)") in out
        assert ("FLEET: app1 done 1 poll(s) | "
                "app2 done 1 poll(s)") in out

    def test_checkpoints_resume_across_runs(self, tmp_path, job_dir,
                                            capsys):
        config = _fleet_config(
            tmp_path, job_dir, ("app1",),
            extra='checkpoint = "app1.ckpt.json"\n')
        assert main(["fleet", "--jobs", str(config), "--once"]) == 0
        first = capsys.readouterr().out
        assert "NODES" in first  # first run renders the full DFG
        assert (tmp_path / "app1.ckpt.json").exists()
        assert main(["fleet", "--jobs", str(config), "--once"]) == 0
        second = capsys.readouterr().out
        # The resumed run restored everything: poll numbering and the
        # event total continue, and nothing is re-ingested.
        assert "[app1] poll 2: 6 files, " in second
        assert "75 events (+0 sealed" in second

    def test_missing_config_is_a_usage_error(self, tmp_path, capsys):
        code = main(["fleet", "--jobs", str(tmp_path / "nope.toml")])
        assert code == 2
        assert "no such fleet config" in capsys.readouterr().err

    def test_missing_trace_directory_is_a_usage_error(self, tmp_path,
                                                      capsys):
        config = tmp_path / "fleet.toml"
        config.write_text('[jobs.a]\nsource = "missing"\n',
                          encoding="utf-8")
        code = main(["fleet", "--jobs", str(config)])
        assert code == 2
        assert "no such trace directory" in capsys.readouterr().err


class TestWatchExitCodes:
    def _poison_second_poll(self, monkeypatch):
        real_poll = LiveIngest.poll
        calls = {"n": 0}

        def poll(self):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise ReproError("tracked trace file vanished")
            return real_poll(self)

        monkeypatch.setattr(LiveIngest, "poll", poll)

    def test_runtime_failure_exits_1(self, monkeypatch, populated_dir,
                                     capsys):
        """A ReproError escaping the live loop is a *runtime* failure
        (exit 1, message, no traceback) — distinct from the exit-2
        configuration errors."""
        self._poison_second_poll(monkeypatch)
        code = main(["watch", str(populated_dir), "--polls", "2",
                     "--interval", "0"])
        assert code == 1
        captured = capsys.readouterr()
        assert "error: tracked trace file vanished" in captured.err
        assert "poll 1: " in captured.out  # the first poll happened

    def test_emit_packs_even_when_the_loop_dies(self, monkeypatch,
                                                tmp_path,
                                                populated_dir, capsys):
        """The --emit journal reaches the destination .elog on the
        exception path too, and the exit code still reports the
        failure."""
        self._poison_second_poll(monkeypatch)
        emit = tmp_path / "run.elog"
        code = main(["watch", str(populated_dir), "--polls", "2",
                     "--interval", "0", "--emit", str(emit)])
        assert code == 1
        assert f"emitted event log: {emit}" in capsys.readouterr().out
        assert emit.exists() and emit.stat().st_size > 0


class TestMultiCheckpointHealth:
    def _healthy_checkpoint(self, tmp_path, populated_dir, name):
        path = tmp_path / name
        assert main(["watch", str(populated_dir), "--once",
                     "--checkpoint", str(path),
                     "--metrics-log", str(tmp_path / f"{name}.mlog"),
                     "--no-dfg"]) == 0
        return path

    def _failing_checkpoint(self, tmp_path, name):
        path = tmp_path / name
        path.write_text(json.dumps(FAILING_SIDECAR), encoding="utf-8")
        return path

    def test_all_ok_aggregates_to_ok(self, tmp_path, populated_dir,
                                     capsys):
        one = self._healthy_checkpoint(tmp_path, populated_dir,
                                       "one.ckpt.json")
        two = self._healthy_checkpoint(tmp_path, populated_dir,
                                       "two.ckpt.json")
        capsys.readouterr()
        assert main(["health", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert f"== {one}" in out and f"== {two}" in out
        assert "fleet status: ok (2 checkpoint(s), worst wins)" in out

    def test_worst_checkpoint_wins(self, tmp_path, populated_dir,
                                   capsys):
        good = self._healthy_checkpoint(tmp_path, populated_dir,
                                        "good.ckpt.json")
        bad = self._failing_checkpoint(tmp_path, "bad.ckpt.json")
        capsys.readouterr()
        assert main(["health", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert ("fleet status: failing (2 checkpoint(s), worst wins)"
                in out)

    def test_json_verdict_carries_per_checkpoint_detail(
            self, tmp_path, populated_dir, capsys):
        good = self._healthy_checkpoint(tmp_path, populated_dir,
                                        "good.ckpt.json")
        bad = self._failing_checkpoint(tmp_path, "bad.ckpt.json")
        capsys.readouterr()
        assert main(["health", str(good), str(bad), "--json"]) == 1
        combined = json.loads(capsys.readouterr().out)
        assert combined["status"] == "failing"
        assert combined["jobs"][str(good)]["status"] == "ok"
        assert combined["jobs"][str(bad)]["status"] == "failing"

    def test_single_checkpoint_output_is_unwrapped(
            self, tmp_path, populated_dir, capsys):
        one = self._healthy_checkpoint(tmp_path, populated_dir,
                                       "one.ckpt.json")
        capsys.readouterr()
        assert main(["health", str(one)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("status: ok")
        assert "fleet status" not in out

    def test_missing_checkpoint_is_a_usage_error(self, tmp_path,
                                                 populated_dir,
                                                 capsys):
        one = self._healthy_checkpoint(tmp_path, populated_dir,
                                       "one.ckpt.json")
        capsys.readouterr()
        code = main(["health", str(one),
                     str(tmp_path / "ghost.ckpt.json")])
        assert code == 2
        assert "no such checkpoint" in capsys.readouterr().err


class TestHealthEdgeCases:
    """Sidecar-version and corruption edges of ``st-inspector
    health``: v6 compacting watches, mixed-version checkpoint lists,
    and the exit-2 usage errors for unreadable sidecars."""

    def _compacting_checkpoint(self, tmp_path, populated_dir, name):
        """A checkpoint written by a watch that compacts its emit
        journal — the newest (v6) sidecar shape."""
        path = tmp_path / name
        assert main(["watch", str(populated_dir), "--once",
                     "--checkpoint", str(path),
                     "--emit", str(tmp_path / f"{name}.elog"),
                     "--compact-emit", "1",
                     "--metrics-log",
                     str(tmp_path / f"{name}.mlog"),
                     "--no-dfg"]) == 0
        return path

    def test_v6_compacting_sidecar_reads_healthy(self, tmp_path,
                                                 populated_dir,
                                                 capsys):
        one = self._compacting_checkpoint(tmp_path, populated_dir,
                                          "v6.ckpt.json")
        state = json.loads(one.read_text(encoding="utf-8"))
        assert state["version"] == 6
        capsys.readouterr()
        assert main(["health", str(one)]) == 0
        assert capsys.readouterr().out.startswith("status: ok")

    def test_mixed_version_list_aggregates(self, tmp_path,
                                           populated_dir, capsys):
        """A fleet mid-upgrade: one v6 sidecar, one older v5 — the
        aggregate still reads both and the worst status wins."""
        new = self._compacting_checkpoint(tmp_path, populated_dir,
                                          "new.ckpt.json")
        old = tmp_path / "old.ckpt.json"
        old.write_text(json.dumps(FAILING_SIDECAR), encoding="utf-8")
        capsys.readouterr()
        assert main(["health", str(new), str(old), "--json"]) == 1
        combined = json.loads(capsys.readouterr().out)
        assert combined["status"] == "failing"
        assert combined["jobs"][str(new)]["status"] == "ok"
        assert combined["jobs"][str(old)]["status"] == "failing"

    def test_corrupt_sidecar_is_a_usage_error(self, tmp_path,
                                              populated_dir, capsys):
        good = self._compacting_checkpoint(tmp_path, populated_dir,
                                           "good.ckpt.json")
        torn = tmp_path / "torn.ckpt.json"
        torn.write_text('{"version": 6, "telem', encoding="utf-8")
        capsys.readouterr()
        code = main(["health", str(good), str(torn)])
        assert code == 2
        assert "corrupt checkpoint" in capsys.readouterr().err

    def test_uninstrumented_sidecar_is_a_usage_error(self, tmp_path,
                                                     populated_dir,
                                                     capsys):
        """A sidecar from a watch run without --metrics-log/-port has
        no snapshot to judge — the error says how to get one and
        names the sidecar version it did find."""
        path = tmp_path / "plain.ckpt.json"
        assert main(["watch", str(populated_dir), "--once",
                     "--checkpoint", str(path), "--no-dfg"]) == 0
        capsys.readouterr()
        code = main(["health", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "no telemetry snapshot" in err
        assert "version 6" in err


class TestCompactionConfigExitCodes:
    def test_catalog_on_emit_journal_is_exit_2_naming_the_key(
            self, tmp_path, job_dir, capsys):
        """Shared catalog landing on a job's derived emit-journal
        path: rejected at config load, exit 2, and the message names
        the journal key so the operator can find the clash."""
        for name in ("app1", "app2"):
            job_dir(name)
        config = tmp_path / "fleet.toml"
        config.write_text(
            '[jobs.app1]\nsource = "app1"\nemit = "run.elog"\n'
            '[jobs.app2]\nsource = "app2"\n'
            'catalog = "run.elog.journal"\n',
            encoding="utf-8")
        code = main(["fleet", "--jobs", str(config), "--once"])
        assert code == 2
        err = capsys.readouterr().err
        assert "emit journal" in err
        assert "run.elog.journal" in err

    def test_compact_emit_without_checkpoint_is_exit_2(
            self, tmp_path, job_dir, capsys):
        job_dir("app1")
        config = tmp_path / "fleet.toml"
        config.write_text(
            '[jobs.app1]\nsource = "app1"\nemit = "run.elog"\n'
            'compact_emit = 65536\n', encoding="utf-8")
        code = main(["fleet", "--jobs", str(config), "--once"])
        assert code == 2
        assert "compact_emit" in capsys.readouterr().err

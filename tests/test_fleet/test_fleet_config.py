"""``fleet.toml`` loading: fan-out defaults, overrides, validation."""

from __future__ import annotations

import json

import pytest

from repro.fleet import FleetConfigError, load_fleet_config
from repro.fleet.config import parse_fleet_data


def _write(tmp_path, text: str, name: str = "fleet.toml"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestFanOutAndOverrides:
    def test_defaults_fan_out_and_per_job_overrides_win(self, tmp_path):
        path = _write(tmp_path, """
            interval = 1.5
            rules = "shared-rules.toml"

            [jobs.app1]
            source = "traces/app1"
            checkpoint = "app1.ckpt.json"

            [jobs.app2]
            source = "strace:traces/app2"
            interval = 5.0
            rules = "app2-rules.toml"
            emit = "app2.elog"
        """)
        specs = load_fleet_config(path)
        assert [spec.name for spec in specs] == ["app1", "app2"]
        app1, app2 = specs
        # The shared rules file fans out; the override wins.
        assert app1.rules == str(tmp_path / "shared-rules.toml")
        assert app2.rules == str(tmp_path / "app2-rules.toml")
        assert app1.interval == 1.5
        assert app2.interval == 5.0
        # Relative paths resolve against the config file's directory,
        # scheme spelling preserved.
        assert app1.source == str(tmp_path / "traces/app1")
        assert app2.source == f"strace:{tmp_path / 'traces/app2'}"
        assert app1.checkpoint == str(tmp_path / "app1.ckpt.json")
        assert app2.emit == str(tmp_path / "app2.elog")
        assert app2.checkpoint is None

    def test_absolute_paths_pass_through(self, tmp_path):
        path = _write(tmp_path, f"""
            [jobs.a]
            source = "{tmp_path}/elsewhere"
            checkpoint = "{tmp_path}/a.ckpt.json"
        """)
        (spec,) = load_fleet_config(path)
        assert spec.source == f"{tmp_path}/elsewhere"
        assert spec.checkpoint == f"{tmp_path}/a.ckpt.json"

    def test_json_config_accepted(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({
            "interval": 3,
            "jobs": {"only": {"source": "traces"}},
        }), encoding="utf-8")
        (spec,) = load_fleet_config(path)
        assert spec.name == "only"
        assert spec.interval == 3.0
        assert spec.source == str(tmp_path / "traces")

    def test_presentation_keys(self, tmp_path):
        path = _write(tmp_path, """
            dfg = false
            top = 3

            [jobs.a]
            source = "traces"
            window = 16
            mapping = "call"
            recursive = true
        """)
        (spec,) = load_fleet_config(path)
        assert spec.show_dfg is False
        assert spec.top == 3
        assert spec.window == 16
        assert spec.mapping == "call"
        assert spec.recursive is True


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FleetConfigError, match="no such fleet"):
            load_fleet_config(tmp_path / "nope.toml")

    def test_parse_error_names_the_file(self, tmp_path):
        path = _write(tmp_path, "interval = = 2")
        with pytest.raises(FleetConfigError, match="parse error"):
            load_fleet_config(path)

    def test_no_jobs(self, tmp_path):
        path = _write(tmp_path, "interval = 2.0")
        with pytest.raises(FleetConfigError, match="no jobs"):
            load_fleet_config(path)

    def test_unknown_top_level_key(self, tmp_path):
        path = _write(tmp_path, """
            polls = 4
            [jobs.a]
            source = "traces"
        """)
        with pytest.raises(FleetConfigError,
                           match=r"unknown top-level key\(s\) \['polls'\]"):
            load_fleet_config(path)

    def test_unknown_job_key_names_the_job(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.app1]
            source = "traces"
            chekpoint = "typo.json"
        """)
        with pytest.raises(FleetConfigError,
                           match=r"job 'app1': unknown key\(s\)"):
            load_fleet_config(path)

    def test_invalid_job_name(self, tmp_path):
        path = _write(tmp_path, """
            [jobs."has space"]
            source = "traces"
        """)
        with pytest.raises(FleetConfigError, match="invalid job name"):
            load_fleet_config(path)

    def test_missing_source_names_the_job(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.app1]
            interval = 1.0
        """)
        with pytest.raises(FleetConfigError,
                           match="job 'app1' has no source"):
            load_fleet_config(path)

    def test_colliding_write_paths_rejected(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            checkpoint = "shared.ckpt.json"

            [jobs.b]
            source = "traces/b"
            checkpoint = "shared.ckpt.json"
        """)
        with pytest.raises(FleetConfigError, match="collides"):
            load_fleet_config(path)

    def test_emit_checkpoint_cross_collision_rejected(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            emit = "out.elog"

            [jobs.b]
            source = "traces/b"
            checkpoint = "out.elog"
        """)
        with pytest.raises(FleetConfigError, match="collides"):
            load_fleet_config(path)

    def test_alert_log_without_rules(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces"
            alert_log = "alerts.jsonl"
        """)
        with pytest.raises(FleetConfigError, match="no rules"):
            load_fleet_config(path)

    @pytest.mark.parametrize("snippet,match", [
        ("interval = \"soon\"", "'interval' must be a number"),
        ("interval = -1", "'interval' must be a number >= 0"),
        ("window = 1", "'window' must be an integer >= 2"),
        ("recursive = \"yes\"", "'recursive' must be a boolean"),
        ("mapping = \"routes\"", "'mapping' must be one of"),
        ("top = 0", "'top' must be an integer >= 1"),
    ])
    def test_bad_value_types(self, tmp_path, snippet, match):
        path = _write(tmp_path, f"""
            [jobs.a]
            source = "traces"
            {snippet}
        """)
        with pytest.raises(FleetConfigError, match=match):
            load_fleet_config(path)

    def test_interval_rejects_boolean(self):
        with pytest.raises(FleetConfigError, match="'interval' must be"):
            parse_fleet_data(
                {"jobs": {"a": {"source": "traces",
                                "interval": True}}},
                where="inline")

    def test_parse_fleet_data_resolves_against_base_dir(self, tmp_path):
        (spec,) = parse_fleet_data(
            {"jobs": {"a": {"source": "traces"}}},
            where="inline", base_dir=tmp_path)
        assert spec.source == str(tmp_path / "traces")


class TestCatalogKeys:
    def test_shared_catalog_fans_out_run_names_default(self, tmp_path):
        """One top-level catalog is the normal fleet setup: it fans
        out to every job (multi-writer), and each job's run name
        defaults to the job name so histories stay separable."""
        path = _write(tmp_path, """
            catalog = "runs.db"

            [jobs.app1]
            source = "traces/app1"

            [jobs.app2]
            source = "traces/app2"
            run_name = "app2-nightly"
        """)
        app1, app2 = load_fleet_config(path)
        assert app1.catalog == app2.catalog == str(tmp_path / "runs.db")
        assert app1.run_name == "app1"
        assert app2.run_name == "app2-nightly"

    def test_run_name_without_catalog_rejected(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces"
            run_name = "nightly"
        """)
        with pytest.raises(FleetConfigError,
                           match="run_name but no catalog"):
            load_fleet_config(path)

    def test_duplicate_run_names_in_one_catalog_rejected(self,
                                                         tmp_path):
        path = _write(tmp_path, """
            catalog = "runs.db"

            [jobs.a]
            source = "traces/a"
            run_name = "same"

            [jobs.b]
            source = "traces/b"
            run_name = "same"
        """)
        with pytest.raises(FleetConfigError,
                           match="unique per catalog"):
            load_fleet_config(path)

    def test_same_run_name_in_different_catalogs_allowed(self,
                                                         tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            catalog = "a.db"
            run_name = "nightly"

            [jobs.b]
            source = "traces/b"
            catalog = "b.db"
            run_name = "nightly"
        """)
        a, b = load_fleet_config(path)
        assert a.run_name == b.run_name == "nightly"
        assert a.catalog != b.catalog

    def test_catalog_colliding_with_writer_rejected(self, tmp_path):
        """Both directions: a catalog declared after the writer it
        collides with, and a writer declared after the catalog."""
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            emit = "runs.db"

            [jobs.b]
            source = "traces/b"
            catalog = "runs.db"
        """)
        with pytest.raises(FleetConfigError,
                           match="cannot double as a"):
            load_fleet_config(path)
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            catalog = "runs.db"

            [jobs.b]
            source = "traces/b"
            checkpoint = "runs.db"
        """)
        with pytest.raises(FleetConfigError,
                           match="cannot double as a"):
            load_fleet_config(path)

    def test_catalog_type_checked(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces"
            catalog = 7
        """)
        with pytest.raises(FleetConfigError,
                           match="'catalog' must be a string"):
            load_fleet_config(path)

    def test_catalog_path_resolves_against_config_dir(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces"
            catalog = "state/runs.db"
        """)
        (spec,) = load_fleet_config(path)
        assert spec.catalog == str(tmp_path / "state/runs.db")


class TestCompactionAndBudgetKeys:
    """The week-long-watcher keys: ``memory_budget`` (fans out) and
    ``compact_emit`` (job-level only — it needs the job's own emit
    and checkpoint paths)."""

    def test_memory_budget_fans_out_from_defaults(self, tmp_path):
        path = _write(tmp_path, """
            memory_budget = 1048576

            [jobs.a]
            source = "traces/a"

            [jobs.b]
            source = "traces/b"
            memory_budget = 4096
        """)
        by_name = {spec.name: spec for spec in load_fleet_config(path)}
        assert by_name["a"].memory_budget == 1048576
        assert by_name["b"].memory_budget == 4096

    def test_compact_emit_is_not_a_defaults_key(self, tmp_path):
        path = _write(tmp_path, """
            compact_emit = 65536

            [jobs.a]
            source = "traces/a"
        """)
        with pytest.raises(FleetConfigError, match="compact_emit"):
            load_fleet_config(path)

    def test_compact_emit_requires_emit_and_checkpoint(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            checkpoint = "a.ckpt.json"
            compact_emit = 65536
        """)
        with pytest.raises(FleetConfigError,
                           match="compact_emit but no emit"):
            load_fleet_config(path)
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            emit = "a.elog"
            compact_emit = 65536
        """)
        with pytest.raises(FleetConfigError,
                           match="compact_emit but no\\s+checkpoint"):
            load_fleet_config(path)

    def test_window_and_memory_budget_conflict(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            window = 64
            memory_budget = 4096
        """)
        with pytest.raises(FleetConfigError, match="pick\\s+one"):
            load_fleet_config(path)

    @pytest.mark.parametrize("snippet,match", [
        ("memory_budget = 0",
         "'memory_budget' must be an integer >= 1"),
        ("memory_budget = \"1M\"",
         "'memory_budget' must be an integer >= 1"),
        ("compact_emit = -4",
         "'compact_emit' must be an integer >= 1"),
    ])
    def test_value_range_and_type_checks(self, tmp_path, snippet,
                                         match):
        path = _write(tmp_path, f"""
            [jobs.a]
            source = "traces/a"
            emit = "a.elog"
            checkpoint = "a.ckpt.json"
            {snippet}
        """)
        with pytest.raises(FleetConfigError, match=match):
            load_fleet_config(path)

    def test_valid_compaction_job_loads(self, tmp_path):
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            emit = "a.elog"
            checkpoint = "a.ckpt.json"
            compact_emit = 65536
            memory_budget = 1048576
        """)
        (spec,) = load_fleet_config(path)
        assert spec.compact_emit == 65536
        assert spec.memory_budget == 1048576

    def test_catalog_colliding_with_emit_journal_rejected(
            self, tmp_path):
        """The derived ``<emit>.journal`` is a write path: a shared
        catalog landing on it is rejected, and the error names the
        journal key — both declaration orders."""
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            emit = "a.elog"

            [jobs.b]
            source = "traces/b"
            catalog = "a.elog.journal"
        """)
        with pytest.raises(FleetConfigError,
                           match="emit journal.*cannot double as a"):
            load_fleet_config(path)
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            catalog = "b.elog.journal"

            [jobs.b]
            source = "traces/b"
            emit = "b.elog"
        """)
        with pytest.raises(FleetConfigError, match="emit journal"):
            load_fleet_config(path)

    def test_two_jobs_emit_journals_collide(self, tmp_path):
        """Two emits into one destination collide on the .elog itself
        AND on the derived journal; one emit colliding with another
        job's checkpoint named like a journal is caught too."""
        path = _write(tmp_path, """
            [jobs.a]
            source = "traces/a"
            checkpoint = "x.elog.journal"

            [jobs.b]
            source = "traces/b"
            emit = "x.elog"
        """)
        with pytest.raises(FleetConfigError, match="collides"):
            load_fleet_config(path)

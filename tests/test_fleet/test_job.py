"""The job layer: spec resolution, lifecycle, rebuild-from-checkpoint."""

from __future__ import annotations

import pytest

from repro._util.errors import ReproError
from repro.core.mapping import CallOnly, CallPath, CallTopDirs
from repro.fleet.job import JobSpec, WatchJob, mapping_from_name


class TestMappingFromName:
    def test_known_names(self):
        assert isinstance(mapping_from_name("topdirs"), CallTopDirs)
        assert isinstance(mapping_from_name("path"), CallPath)
        assert isinstance(mapping_from_name("call"), CallOnly)

    def test_unknown_name(self):
        with pytest.raises(ReproError, match="unknown mapping"):
            mapping_from_name("routes")


class TestSpecResolution:
    def test_bare_path_source(self, tmp_path):
        spec = JobSpec(source=str(tmp_path / "traces"))
        assert spec.resolve_directory() == tmp_path / "traces"

    def test_strace_uri_source(self, tmp_path):
        spec = JobSpec(source=f"strace:{tmp_path / 'traces'}")
        assert spec.resolve_directory() == tmp_path / "traces"

    def test_strace_uri_with_options_rejected(self, tmp_path):
        spec = JobSpec(source=f"strace:{tmp_path}?pid_suffix=1")
        with pytest.raises(ReproError, match="no .options"):
            spec.resolve_directory()

    def test_complete_artifact_scheme_rejected(self, tmp_path):
        spec = JobSpec(source=f"elog:{tmp_path / 'run.elog'}",
                       name="app1")
        with pytest.raises(ReproError,
                           match="cannot watch source"):
            spec.resolve_directory()

    def test_build_engine_missing_directory(self, tmp_path):
        spec = JobSpec(source=str(tmp_path / "nope"), name="app1")
        with pytest.raises(ReproError,
                           match="no such trace directory"):
            spec.build_engine()

    def test_alert_log_without_rules_rejected(self, populated_dir):
        spec = JobSpec(source=str(populated_dir),
                       alert_log=str(populated_dir / "alerts.jsonl"))
        with pytest.raises(ReproError, match="require --rules"):
            spec.build_engine()

    def test_with_overrides(self, tmp_path):
        spec = JobSpec(source=str(tmp_path), interval=1.0)
        derived = spec.with_overrides(polls=3, telemetry=True)
        assert derived.polls == 3
        assert derived.telemetry is True
        assert derived.interval == 1.0
        assert spec.polls is None  # the original is untouched


class TestLifecycle:
    def test_poll_once_and_exhaustion(self, populated_dir):
        job = JobSpec(source=str(populated_dir), polls=2).build()
        assert job.state == "pending"
        assert not job.exhausted
        outcome = job.poll_once()
        assert outcome.text.startswith("poll 1: ")
        assert outcome.result.n_files == 6
        assert job.completed == 1
        assert not job.exhausted
        job.poll_once()
        assert job.exhausted
        job.close()

    def test_unbounded_job_never_exhausts(self, populated_dir):
        job = JobSpec(source=str(populated_dir)).build()
        job.poll_once()
        assert not job.exhausted
        job.close()

    def test_finalize_packs_once(self, tmp_path, populated_dir):
        emit = tmp_path / "run.elog"
        job = JobSpec(source=str(populated_dir), polls=1,
                      emit=str(emit)).build()
        job.poll_once()
        packed = job.finalize()
        assert packed is not None and packed.exists()
        assert job.finalize() is None  # idempotent
        job.close()

    def test_finalize_without_emit(self, populated_dir):
        job = JobSpec(source=str(populated_dir), polls=1).build()
        job.poll_once()
        assert job.finalize() is None
        job.close()

    def test_rebuild_without_spec_rejected(self, populated_dir):
        from repro.live.engine import LiveIngest

        job = WatchJob(LiveIngest(populated_dir))
        with pytest.raises(ReproError, match="bare engine"):
            job.rebuild()
        job.close()

    def test_rebuild_restores_from_checkpoint(self, tmp_path,
                                              populated_dir):
        spec = JobSpec(source=str(populated_dir),
                       checkpoint=str(tmp_path / "job.ckpt.json"))
        job = spec.build()
        job.poll_once()  # ingests everything, saves the sidecar
        before = job.engine.snapshot_dfg()
        old_engine = job.engine
        job.rebuild()
        assert job.engine is not old_engine
        # The fresh engine restored the sidecar: nothing to re-ingest,
        # same graph — exactly a killed-and-restarted watch process.
        result = job.engine.poll()
        assert result.new_files == []
        assert not result.changed
        assert job.engine.snapshot_dfg() == before
        job.close()

"""Fixtures for the fleet-runtime suite.

Same device as the live suite: a simulated workload rendered to
per-file bytes once per session (shared root-conftest fixtures),
replayed into per-job directories in time-ordered increments while a
fake clock drives the scheduler.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.strategies import write_all as _write_all


@pytest.fixture()
def populated_dir(tmp_path, ls_file_bytes) -> Path:
    """One fully written trace directory."""
    directory = tmp_path / "traces"
    directory.mkdir()
    _write_all(directory, ls_file_bytes)
    return directory


@pytest.fixture()
def job_dir(tmp_path, ls_file_bytes):
    """Factory: a named, fully written trace directory per job."""
    def make(name: str) -> Path:
        directory = tmp_path / name
        directory.mkdir()
        _write_all(directory, ls_file_bytes)
        return directory
    return make

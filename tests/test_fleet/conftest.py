"""Fixtures for the fleet-runtime suite.

Same device as the live suite: a simulated workload rendered to
per-file bytes once per session, replayed into per-job directories in
time-ordered increments while a fake clock drives the scheduler.
"""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def ls_file_bytes() -> dict[str, bytes]:
    """The Fig. 1 ``ls`` / ``ls -l`` traces as per-file bytes."""
    import tempfile

    from repro.simulate.workloads.ls import generate_fig1_traces

    with tempfile.TemporaryDirectory() as scratch:
        generate_fig1_traces(scratch)
        return {path.name: path.read_bytes()
                for path in sorted(Path(scratch).iterdir())}


def _write_all(directory: Path, file_bytes: dict[str, bytes]) -> None:
    for filename, content in file_bytes.items():
        (directory / filename).write_bytes(content)


@pytest.fixture(scope="session")
def write_all():
    """Write a rendered workload's files into a directory."""
    return _write_all


@pytest.fixture()
def populated_dir(tmp_path, ls_file_bytes) -> Path:
    """One fully written trace directory."""
    directory = tmp_path / "traces"
    directory.mkdir()
    _write_all(directory, ls_file_bytes)
    return directory


@pytest.fixture()
def job_dir(tmp_path, ls_file_bytes):
    """Factory: a named, fully written trace directory per job."""
    def make(name: str) -> Path:
        directory = tmp_path / name
        directory.mkdir()
        _write_all(directory, ls_file_bytes)
        return directory
    return make

"""The docs tree: present, linked, and its examples can't rot."""

from __future__ import annotations

import re
import tomllib
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = ("docs/architecture.md", "docs/rules.md", "docs/cli.md",
        "docs/fleet.md", "docs/observability.md", "docs/catalog.md")


class TestDocsTree:
    @pytest.mark.parametrize("relpath", DOCS)
    def test_document_exists_and_is_substantial(self, relpath):
        path = REPO / relpath
        assert path.is_file(), relpath
        assert len(path.read_text(encoding="utf-8")) > 1000, relpath

    def test_readme_links_every_document(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for relpath in DOCS:
            assert relpath in readme, relpath

    def test_rules_doc_covers_every_rule_type(self):
        from repro.alerts import RULE_TYPES

        text = (REPO / "docs/rules.md").read_text(encoding="utf-8")
        for kind in RULE_TYPES:
            assert f"`{kind}`" in text, kind

    def test_cli_doc_covers_every_subcommand_and_scheme(self):
        from repro.cli import build_parser
        from repro.sources import registered_schemes

        text = (REPO / "docs/cli.md").read_text(encoding="utf-8")
        subparsers = next(
            action for action in build_parser()._actions
            if hasattr(action, "choices") and action.choices)
        for command in subparsers.choices:
            assert f"`{command}" in text, command
        for scheme in registered_schemes():
            assert f"`{scheme}:`" in text, scheme


class TestCopyPasteableRules:
    def test_the_rules_md_example_validates(self, monkeypatch):
        """The fenced rules.toml in docs/rules.md must load through
        the real parser — a doc drift fails the suite."""
        from repro.alerts import RULE_TYPES
        from repro.alerts.config import parse_rules_data

        monkeypatch.setenv("PAGER_TOKEN", "docs-example")
        text = (REPO / "docs/rules.md").read_text(encoding="utf-8")
        match = re.search(r"```toml\n(.*?)```", text, re.DOTALL)
        assert match, "docs/rules.md lost its ```toml example"
        data = tomllib.loads(match.group(1))
        config = parse_rules_data(data, where="docs/rules.md example")
        assert {rule.kind for rule in config.rules} == \
            set(RULE_TYPES), \
            "the example should exercise every rule type"
        assert len(config.sinks) == 4
        assert config.baseline == "elog:known-good.elog"
        assert config.history_limit == 500
        assert any(rule.cooldown > 0 for rule in config.rules), \
            "the example should demonstrate cooldown"


class TestCopyPasteableCatalog:
    def test_the_catalog_md_example_validates(self):
        """The fenced mined-baseline rules example in docs/catalog.md
        must load through the real rules parser."""
        from repro.alerts.config import parse_rules_data

        text = (REPO / "docs/catalog.md").read_text(encoding="utf-8")
        match = re.search(r"```toml\n(.*?)```", text, re.DOTALL)
        assert match, "docs/catalog.md lost its ```toml example"
        data = tomllib.loads(match.group(1))
        config = parse_rules_data(data, where="docs/catalog.md example")
        assert config.baseline.startswith("catalog:"), \
            "the example should demonstrate a mined baseline"
        kinds = {rule.kind for rule in config.rules}
        assert "new_edge" in kinds
        assert any(getattr(rule, "absent_from_baseline", False)
                   for rule in config.rules), \
            "the example should demonstrate absent_from_baseline"


class TestCopyPasteableFleet:
    def test_the_fleet_md_example_validates(self, tmp_path):
        """The fenced fleet.toml in docs/fleet.md must load through
        the real parser — a doc drift fails the suite."""
        from repro.fleet import parse_fleet_data

        text = (REPO / "docs/fleet.md").read_text(encoding="utf-8")
        match = re.search(r"```toml\n(.*?)```", text, re.DOTALL)
        assert match, "docs/fleet.md lost its ```toml example"
        data = tomllib.loads(match.group(1))
        specs = parse_fleet_data(data, where="docs/fleet.md example",
                                 base_dir=tmp_path)
        by_name = {spec.name: spec for spec in specs}
        assert set(by_name) == {"app1", "app2", "app3"}
        # The shared defaults fan out; per-job overrides win.
        assert by_name["app1"].interval == 1.0
        assert by_name["app2"].interval == 5.0
        assert by_name["app1"].rules == str(tmp_path / "rules.toml")
        assert by_name["app3"].rules == \
            str(tmp_path / "app3-rules.toml")
        # Scheme spelling is preserved, relative paths resolved.
        assert by_name["app2"].source.startswith("strace:")
        assert by_name["app2"].window == 512
        assert by_name["app3"].alert_log == \
            str(tmp_path / "app3-alerts.jsonl")

"""Trace file/directory reading (cases per Sec. IV)."""

import pytest

from repro._util.errors import TraceParseError
from repro.strace.naming import TraceFileName
from repro.strace.reader import read_trace_dir, read_trace_file


class TestReadFile:
    def test_fig2a_file(self, fig1_dir):
        case = read_trace_file(fig1_dir / "a_host1_9042.st")
        assert case.case_id == "a9042"
        assert len(case) == 8
        assert case.records[0].call == "read"
        assert case.records[-1].call == "write"
        assert case.records[-1].fp == "/dev/pts/7"

    def test_records_sorted_by_start(self, fig1_dir):
        case = read_trace_file(fig1_dir / "b_host1_9157.st")
        starts = [r.start_us for r in case.records]
        assert starts == sorted(starts)

    def test_name_override(self, tmp_path):
        path = tmp_path / "weird-name.log"
        path.write_text(
            "1  00:00:00.000001 close(3</x>) = 0 <0.000001>\n")
        case = read_trace_file(
            path, name=TraceFileName("z", "h", 1))
        assert case.case_id == "z1"

    def test_unnamed_nonconvention_file_rejected(self, tmp_path):
        path = tmp_path / "weird-name.log"
        path.write_text("")
        with pytest.raises(TraceParseError):
            read_trace_file(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_text(
            "\n1  00:00:00.000001 close(3</x>) = 0 <0.000001>\n\n")
        case = read_trace_file(path)
        assert len(case) == 1

    def test_merge_stats_exposed(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_text(
            "1  00:00:00.000001 read(3</x>, <unfinished ...>\n"
            "1  00:00:00.000900 <... read resumed> ..., 5) = 5 "
            "<0.000899>\n")
        case = read_trace_file(path)
        assert case.merge_stats.merged_pairs == 1
        assert len(case) == 1


class TestReadDir:
    def test_all_six_cases(self, fig1_dir):
        cases = read_trace_dir(fig1_dir)
        assert len(cases) == 6
        assert [c.case_id for c in cases] == [
            "a9042", "a9043", "a9045", "b9157", "b9158", "b9160"]

    def test_cid_filter(self, fig1_dir):
        cases = read_trace_dir(fig1_dir, cids={"a"})
        assert [c.case_id for c in cases] == ["a9042", "a9043", "a9045"]

    def test_empty_cid_filter_rejected(self, fig1_dir):
        with pytest.raises(TraceParseError):
            read_trace_dir(fig1_dir, cids={"zzz"})

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(TraceParseError):
            read_trace_dir(tmp_path / "nope")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(TraceParseError):
            read_trace_dir(tmp_path)

    def test_non_st_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        (tmp_path / "a_h_1.st").write_text(
            "1  00:00:00.000001 close(3</x>) = 0 <0.000001>\n")
        cases = read_trace_dir(tmp_path)
        assert len(cases) == 1

"""Line tokenization and record-kind classification."""

import pytest

from repro._util.errors import TraceParseError
from repro.strace.tokenizer import (
    RecordKind,
    resumed_call_name,
    tokenize_line,
    unfinished_call_name,
)


class TestHeader:
    def test_paper_line(self):
        token = tokenize_line(
            "9054  08:55:54.153994 read(3</etc/passwd>, ..., 832) "
            "= 832 <0.000203>")
        assert token.pid == 9054
        assert token.start_us == 32154153994
        assert token.kind is RecordKind.SYSCALL

    def test_trailing_newline_tolerated(self):
        token = tokenize_line(
            "1  00:00:00.000001 close(3</x>) = 0 <0.000001>\n")
        assert token.kind is RecordKind.SYSCALL

    @pytest.mark.parametrize("bad", [
        "",                                     # empty
        "no header at all",
        "9054 read(...) = 0",                   # missing timestamp
        "9054  25:00:00.000000 read() = 0",     # invalid hour
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(TraceParseError):
            tokenize_line(bad)

    def test_error_carries_location(self):
        with pytest.raises(TraceParseError) as excinfo:
            tokenize_line("garbage", path="x.st", lineno=7)
        assert "x.st" in str(excinfo.value)
        assert "7" in str(excinfo.value)


class TestClassification:
    def test_unfinished(self):
        token = tokenize_line(
            "77423  16:56:40.452431 read(3</usr/lib/libc.so>, "
            "<unfinished ...>")
        assert token.kind is RecordKind.UNFINISHED

    def test_resumed(self):
        token = tokenize_line(
            "77423  16:56:40.452660 <... read resumed> ..., 405) "
            "= 404 <0.000223>")
        assert token.kind is RecordKind.RESUMED

    def test_signal(self):
        token = tokenize_line(
            "9054  08:55:54.200000 --- SIGCHLD {si_signo=SIGCHLD, "
            "si_code=CLD_EXITED} ---")
        assert token.kind is RecordKind.SIGNAL

    def test_exit(self):
        token = tokenize_line("9054  08:55:54.300000 +++ exited with 0 +++")
        assert token.kind is RecordKind.EXIT

    def test_killed(self):
        token = tokenize_line(
            "9054  08:55:54.300000 +++ killed by SIGKILL +++")
        assert token.kind is RecordKind.EXIT

    def test_unrecognized_body_rejected(self):
        with pytest.raises(TraceParseError):
            tokenize_line("9054  08:55:54.300000 ??? what is this")


class TestCallNameExtraction:
    def test_resumed_call_name(self):
        assert resumed_call_name(
            "<... read resumed> ..., 405) = 404 <0.000223>") == "read"

    def test_resumed_call_name_pwrite(self):
        assert resumed_call_name(
            "<... pwrite64 resumed> ) = 1048576 <0.001000>") == "pwrite64"

    def test_resumed_rejects_non_resumed(self):
        with pytest.raises(TraceParseError):
            resumed_call_name("read(3, ...) = 0")

    def test_unfinished_call_name(self):
        assert unfinished_call_name(
            "read(3</x>, <unfinished ...>") == "read"

    def test_unfinished_rejects_non_call(self):
        with pytest.raises(TraceParseError):
            unfinished_call_name("--- SIGCHLD ---")


class TestAlternativeHeaderFormats:
    def test_ttt_epoch_stamp(self):
        token = tokenize_line(
            "9054  1700000000.123456 read(3</x>, ..., 8) = 8 <0.000001>")
        assert token.pid == 9054
        assert token.start_us == 1700000000123456
        assert token.kind is RecordKind.SYSCALL

    def test_pidless_wallclock(self):
        token = tokenize_line(
            "08:55:54.153994 read(3</x>, ..., 8) = 8 <0.000001>")
        assert token.pid == 0
        assert token.start_us == 32154153994

    def test_pidless_with_custom_default(self):
        token = tokenize_line(
            "08:55:54.153994 close(3</x>) = 0 <0.000001>",
            default_pid=777)
        assert token.pid == 777

    def test_pidless_epoch(self):
        token = tokenize_line(
            "1700000000.123456 close(3</x>) = 0 <0.000001>")
        assert token.pid == 0
        assert token.start_us == 1700000000123456

    def test_ambiguous_short_epoch_rejected(self):
        with pytest.raises(TraceParseError):
            tokenize_line("12345  67890.123456 read() = 0")

"""Argument-level syscall parsing: fp / size / dur extraction rules."""

import pytest

from repro._util.errors import TraceParseError
from repro.strace.parser import parse_body, parse_line, split_args


def parse(line: str):
    record = parse_line(line)
    assert record is not None
    return record


class TestSplitArgs:
    def test_simple(self):
        args, end = split_args("3, 4, 5) tail")
        assert args == ["3", "4", "5"]
        assert end == 7

    def test_quoted_commas(self):
        args, _ = split_args('"a,b", 2)')
        assert args == ['"a,b"', "2"]

    def test_escaped_quote_inside_string(self):
        args, _ = split_args('"say \\"hi\\", ok", 1)')
        assert args == ['"say \\"hi\\", ok"', "1"]

    def test_nested_braces(self):
        args, _ = split_args("{st_mode=S_IFREG|0644, st_size=123}, 9)")
        assert args == ["{st_mode=S_IFREG|0644, st_size=123}", "9"]

    def test_fd_annotation_with_comma_in_path(self):
        args, _ = split_args("3</weird,path/file>, 10)")
        assert args == ["3</weird,path/file>", "10"]

    def test_empty_args(self):
        args, end = split_args(")")
        assert args == []
        assert end == 0

    def test_unterminated_rejected(self):
        with pytest.raises(TraceParseError):
            split_args("1, 2, 3")

    def test_unbalanced_rejected(self):
        with pytest.raises(TraceParseError):
            split_args("1}, 2)")


class TestTransferCalls:
    def test_read_paper_line(self):
        record = parse(
            "9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/"
            "libselinux.so.1>, ..., 832) = 832 <0.000203>")
        assert record.call == "read"
        assert record.fp == "/usr/lib/x86_64-linux-gnu/libselinux.so.1"
        assert record.size == 832
        assert record.requested == 832
        assert record.dur_us == 203
        assert record.ok

    def test_short_read_size_differs_from_requested(self):
        # Sec. III item 6: requested may differ from transferred.
        record = parse(
            "9054  08:55:54.162874 read(3</proc/filesystems>, ..., 1024) "
            "= 478 <0.000052>")
        assert record.requested == 1024
        assert record.size == 478

    def test_eof_read_zero(self):
        record = parse(
            "9054  08:55:54.163049 read(3</proc/filesystems>, \"\", 1024) "
            "= 0 <0.000040>")
        assert record.size == 0

    def test_write_with_string_buffer(self):
        record = parse(
            '9173  08:56:04.758661 write(1</dev/pts/7>, "total 40\\n", 9) '
            "= 9 <0.000074>")
        assert record.call == "write"
        assert record.fp == "/dev/pts/7"
        assert record.size == 9

    def test_pwrite64_with_offset(self):
        record = parse(
            "100  10:00:00.000000 pwrite64(3</p/scratch/t>, ..., 1048576, "
            "16777216) = 1048576 <0.000310>")
        assert record.call == "pwrite64"
        assert record.size == 1048576
        assert record.fp == "/p/scratch/t"

    def test_failed_read_has_no_size(self):
        record = parse(
            "100  10:00:00.000000 read(3</x>, ..., 512) = -1 EINTR "
            "(Interrupted system call) <0.000100>")
        assert record.size is None
        assert record.errno == "EINTR"
        assert not record.ok


class TestOpenat:
    def test_openat_path_from_returned_fd(self):
        # With -y, strace annotates the *returned* descriptor.
        record = parse(
            '77  10:00:00.000001 openat(AT_FDCWD, "/etc/passwd", '
            "O_RDONLY|O_CLOEXEC) = 3</etc/passwd> <0.000010>")
        assert record.call == "openat"
        assert record.fp == "/etc/passwd"
        assert record.retval == 3
        assert record.size is None  # openat is not a transfer call

    def test_openat_fallback_to_quoted_arg_without_y(self):
        record = parse(
            '77  10:00:00.000001 openat(AT_FDCWD, "/etc/passwd", '
            "O_RDONLY) = 3 <0.000010>")
        assert record.fp == "/etc/passwd"

    def test_failed_openat_probe(self):
        record = parse(
            '77  10:00:00.000001 openat(AT_FDCWD, "/lib/nope.so", '
            "O_RDONLY|O_CLOEXEC) = -1 ENOENT (No such file or directory) "
            "<0.000004>")
        assert record.fp == "/lib/nope.so"
        assert record.errno == "ENOENT"
        assert record.retval == -1

    def test_open_with_mode(self):
        record = parse(
            '77  10:00:00.000001 openat(AT_FDCWD, "/p/scratch/t", '
            "O_WRONLY|O_CREAT, 0664) = 4</p/scratch/t> <0.000300>")
        assert record.fp == "/p/scratch/t"
        assert record.retval == 4


class TestOtherCalls:
    def test_lseek(self):
        record = parse(
            "9  09:00:00.000000 lseek(3</p/scratch/t>, 16777216, SEEK_SET) "
            "= 16777216 <0.000003>")
        assert record.call == "lseek"
        assert record.fp == "/p/scratch/t"
        assert record.size is None       # not a transfer call (Sec. III)
        assert record.retval == 16777216

    def test_close(self):
        record = parse(
            "9  09:00:00.000000 close(3</p/scratch/t>) = 0 <0.000002>")
        assert record.fp == "/p/scratch/t"

    def test_fsync(self):
        record = parse(
            "9  09:00:00.000000 fsync(3</p/scratch/t>) = 0 <0.004500>")
        assert record.call == "fsync"
        assert record.dur_us == 4500

    def test_stat_path_argument(self):
        record = parse(
            '9  09:00:00.000000 stat("/etc/hosts", {st_mode=S_IFREG|0644, '
            "st_size=411}) = 0 <0.000008>")
        assert record.fp == "/etc/hosts"

    def test_mmap_hex_return(self):
        record = parse(
            "9  09:00:00.000000 mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, "
            "3, 0) = 0x7f1234560000 <0.000012>")
        assert record.call == "mmap"
        assert record.retval == 0x7F1234560000
        assert record.fp is None

    def test_unknown_call_still_parses(self):
        record = parse(
            "9  09:00:00.000000 frobnicate(1</x>, 2) = 0 <0.000001>")
        assert record.call == "frobnicate"
        assert record.fp == "/x"  # generic fd-annotation extraction

    def test_read_without_y_annotation_has_no_fp(self):
        record = parse(
            "9  09:00:00.000000 read(3, ..., 100) = 100 <0.000001>")
        assert record.fp is None
        assert record.size == 100


class TestReturnClause:
    def test_missing_duration_is_none(self):
        record = parse_body(
            9, 0, "read(3</x>, ..., 4) = 4")
        assert record.dur_us is None

    def test_detached_question_mark(self):
        record = parse_body(9, 0, "read(3</x>, ..., 4) = ? <0.000001>")
        assert record.retval is None
        assert record.size is None

    def test_unparseable_return_rejected(self):
        with pytest.raises(TraceParseError):
            parse_body(9, 0, "read(3</x>) = banana")

    def test_non_syscall_body_rejected(self):
        with pytest.raises(TraceParseError):
            parse_body(9, 0, "= 0 <0.000001>")


def test_parse_line_returns_none_for_signals():
    assert parse_line("9  09:00:00.000000 --- SIGUSR1 {} ---") is None
    assert parse_line("9  09:00:00.000000 +++ exited with 0 +++") is None

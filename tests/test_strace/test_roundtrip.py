"""Property-based round trip: strace writer → tokenizer/parser/merger.

The simulator's strace writer and the parser are independent
implementations of the same text format; hypothesis drives arbitrary
syscall records through writer → parser and requires every attribute
to survive. This is the strongest guarantee that simulated experiments
exercise the identical code path as real traces.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simulate.recording import ProcessRecorder, SyscallRecord
from repro.simulate.strace_writer import write_strace_text
from repro.strace.resume import merge_unfinished
from repro.strace.tokenizer import tokenize_line

paths = st.sampled_from([
    "/p/scratch/ssf/test", "/etc/passwd", "/dev/shm/seg.0",
    "/usr/lib/x86_64-linux-gnu/libc.so.6", "/tmp/x/y/z",
])


@st.composite
def trace_record_sequences(draw, min_size=1, max_size=10):
    """A sequence of records as one process would produce them: a
    single pid, strictly sequential (one in-flight syscall at a time —
    a kernel thread cannot overlap its own calls), timestamps
    accumulated from gaps so the sequence stays within the day."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    clock = draw(st.integers(min_value=0, max_value=80_000_000_000))
    records = []
    for _ in range(n):
        call = draw(st.sampled_from(
            ["read", "write", "pread64", "pwrite64"]))
        requested = draw(st.integers(min_value=0, max_value=1 << 22))
        size = draw(st.integers(min_value=0, max_value=requested))
        dur = draw(st.integers(min_value=0, max_value=10**6))
        records.append(SyscallRecord(
            pid=4711,
            call=call,
            start_us=clock,
            dur_us=dur,
            path=draw(paths),
            fd=draw(st.integers(min_value=3, max_value=1023)),
            size=size,
            requested=requested,
            args_hint=(str(draw(st.integers(0, 10**12)))
                       if call.startswith("p") else None),
        ))
        clock += dur + draw(st.integers(min_value=1, max_value=10**6))
    return records


def roundtrip(records):
    recorder = ProcessRecorder(cid="t", host="h", rid=1, pid=1)
    recorder.records.extend(records)
    text = write_strace_text(recorder)
    tokens = [tokenize_line(line) for line in text.splitlines()]
    parsed, stats = merge_unfinished(tokens)
    return parsed, stats


@given(trace_record_sequences())
@settings(max_examples=150)
def test_transfer_attributes_survive(records):
    parsed, _ = roundtrip(records)
    assert len(parsed) == len(records)
    for original, recovered in zip(records, parsed):
        assert recovered.pid == original.pid
        assert recovered.call == original.call
        assert recovered.fp == original.path
        assert recovered.size == original.size
        assert recovered.requested == original.requested
        assert recovered.dur_us == original.dur_us
        # Wall clock wraps at 24 h; inputs are constrained below that.
        assert recovered.start_us == original.start_us


@given(trace_record_sequences(max_size=8),
       st.floats(min_value=0.999, max_value=1.0))
@settings(max_examples=60)
def test_unfinished_split_roundtrip(records, prob):
    """With forced unfinished/resumed splitting, the merger must
    recover the identical records (start from the unfinished half,
    size/dur from the resumed half)."""
    recorder = ProcessRecorder(cid="t", host="h", rid=1, pid=1)
    recorder.records.extend(records)
    text = write_strace_text(
        recorder, unfinished_probability=prob,
        rng=np.random.default_rng(1))
    tokens = [tokenize_line(line) for line in text.splitlines()]
    parsed, stats = merge_unfinished(tokens)
    assert len(parsed) == len(records)
    for original, recovered in zip(
            sorted(records, key=lambda r: r.start_us),
            parsed):
        assert recovered.call == original.call
        assert recovered.size == original.size
        assert recovered.start_us == original.start_us
        assert recovered.dur_us == original.dur_us


def test_openat_roundtrip_success_and_failure():
    recorder = ProcessRecorder(cid="t", host="h", rid=1, pid=9)
    recorder.record(call="openat", start_us=100, dur_us=10,
                    path="/etc/passwd", ret_fd=3,
                    args_hint="O_RDONLY|O_CLOEXEC")
    recorder.record(call="openat", start_us=200, dur_us=4,
                    path="/lib/nope.so",
                    args_hint="O_RDONLY|O_CLOEXEC")  # no ret_fd → ENOENT
    text = write_strace_text(recorder)
    tokens = [tokenize_line(line) for line in text.splitlines()]
    parsed, _ = merge_unfinished(tokens)
    ok, failed = parsed
    assert ok.fp == "/etc/passwd" and ok.retval == 3 and ok.ok
    assert failed.fp == "/lib/nope.so" and failed.errno == "ENOENT"


def test_lseek_fsync_close_roundtrip():
    recorder = ProcessRecorder(cid="t", host="h", rid=1, pid=9)
    recorder.record(call="lseek", start_us=1, dur_us=2,
                    path="/p/s/t", fd=3, args_hint="16777216",
                    retval=16777216)
    recorder.record(call="fsync", start_us=10, dur_us=4500,
                    path="/p/s/t", fd=3)
    recorder.record(call="close", start_us=20, dur_us=2,
                    path="/p/s/t", fd=3)
    text = write_strace_text(recorder)
    tokens = [tokenize_line(line) for line in text.splitlines()]
    parsed, _ = merge_unfinished(tokens)
    lseek, fsync, close = parsed
    assert lseek.retval == 16777216 and lseek.fp == "/p/s/t"
    assert lseek.size is None          # Sec. III: size only for r/w
    assert fsync.dur_us == 4500
    assert close.call == "close"


def test_call_filtering_emulates_strace_e():
    recorder = ProcessRecorder(cid="t", host="h", rid=1, pid=9)
    recorder.record(call="lseek", start_us=1, dur_us=2, path="/x", fd=3,
                    args_hint="0", retval=0)
    recorder.record(call="read", start_us=5, dur_us=2, path="/x", fd=3,
                    requested=10, size=10)
    text = write_strace_text(recorder, trace_calls={"read"})
    assert "lseek" not in text
    assert "read" in text

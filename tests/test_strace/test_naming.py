"""The <cid>_<host>_<rid>.st naming convention of Fig. 1."""

import pytest
from hypothesis import given, strategies as st

from repro._util.errors import TraceParseError
from repro.strace.naming import (
    TraceFileName,
    format_trace_filename,
    parse_trace_filename,
)


class TestParse:
    def test_paper_names(self):
        name = parse_trace_filename("a_host1_9042.st")
        assert name == TraceFileName(cid="a", host="host1", rid=9042)
        assert name.case_id == "a9042"

    def test_full_path_accepted(self):
        name = parse_trace_filename("/traces/run1/b_host1_9157.st")
        assert name.case_id == "b9157"

    def test_host_with_underscores(self):
        # Hosts like "jwc00_n01": first _ ends cid, last _ starts rid.
        name = parse_trace_filename("x_jwc00_n01_77.st")
        assert name.cid == "x"
        assert name.host == "jwc00_n01"
        assert name.rid == 77

    def test_multichar_cid(self):
        name = parse_trace_filename("mpiio_node01_40000.st")
        assert name.cid == "mpiio"

    @pytest.mark.parametrize("bad", [
        "a_host1_9042.txt",      # wrong suffix
        "ahost19042.st",         # no separators
        "a_host1_.st",           # missing rid
        "_host1_9042.st",        # empty cid
        "a_host1_xyz.st",        # non-numeric rid
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(TraceParseError):
            parse_trace_filename(bad)


class TestFormat:
    def test_paper_example(self):
        assert format_trace_filename("a", "host1", 9042) == \
            "a_host1_9042.st"

    def test_filename_method(self):
        assert TraceFileName("b", "host1", 9157).filename() == \
            "b_host1_9157.st"

    def test_cid_with_underscore_rejected(self):
        with pytest.raises(ValueError):
            format_trace_filename("a_b", "host1", 1)

    def test_empty_cid_rejected(self):
        with pytest.raises(ValueError):
            format_trace_filename("", "host1", 1)

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError):
            format_trace_filename("a", "", 1)

    def test_negative_rid_rejected(self):
        with pytest.raises(ValueError):
            format_trace_filename("a", "host1", -1)


@given(
    cid=st.text(alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8),
    host=st.text(alphabet=st.characters(
        whitelist_categories=("Ll", "Nd"), whitelist_characters="_"),
        min_size=1, max_size=12).filter(
            lambda h: not h.split("_")[-1].isdigit() or "_" not in h),
    rid=st.integers(min_value=0, max_value=10**9),
)
def test_roundtrip_property(cid, host, rid):
    """format → parse recovers the identity (for unambiguous hosts)."""
    name = format_trace_filename(cid, host, rid)
    parsed = parse_trace_filename(name)
    assert parsed.cid == cid
    assert parsed.host == host
    assert parsed.rid == rid


def test_ordering():
    names = sorted([
        TraceFileName("b", "host1", 9157),
        TraceFileName("a", "host1", 9045),
        TraceFileName("a", "host1", 9042),
    ])
    assert [n.case_id for n in names] == ["a9042", "a9045", "b9157"]

"""Unfinished/resumed merging and ERESTARTSYS filtering (Sec. III)."""

import pytest

from repro._util.errors import TraceParseError
from repro.strace.resume import merge_unfinished
from repro.strace.tokenizer import tokenize_line


def toks(text: str):
    return [tokenize_line(line) for line in text.strip().splitlines()]


class TestMerge:
    def test_paper_fig2c_pair(self):
        records, stats = merge_unfinished(toks("""
77423  16:56:40.452431 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, <unfinished ...>
77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>
"""))
        assert stats.merged_pairs == 1
        (record,) = records
        # Start from the unfinished half, size/duration from resumed.
        assert record.start_us == tokenize_line(
            "77423  16:56:40.452431 close(1</x>) = 0 <0.000001>").start_us
        assert record.call == "read"
        assert record.fp == "/usr/lib/x86_64-linux-gnu/libselinux.so.1"
        assert record.size == 404
        assert record.dur_us == 223

    def test_interleaved_pids(self):
        """Two processes blocked simultaneously; pairs match by pid."""
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
200  10:00:00.000002 write(4</b>, <unfinished ...>
200  10:00:00.000500 <... write resumed> ..., 10) = 10 <0.000498>
100  10:00:00.000900 <... read resumed> ..., 20) = 20 <0.000899>
"""))
        assert stats.merged_pairs == 2
        by_pid = {r.pid: r for r in records}
        assert by_pid[100].fp == "/a"
        assert by_pid[100].size == 20
        assert by_pid[200].fp == "/b"
        assert by_pid[200].size == 10

    def test_merged_records_sorted_by_start(self):
        records, _ = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
200  10:00:00.000300 write(4</b>, ..., 5) = 5 <0.000010>
100  10:00:00.000900 <... read resumed> ..., 20) = 20 <0.000899>
"""))
        assert [r.pid for r in records] == [100, 200]

    def test_call_name_mismatch_rejected(self):
        with pytest.raises(TraceParseError):
            merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
100  10:00:00.000500 <... write resumed> ..., 5) = 5 <0.000499>
"""))

    def test_double_unfinished_same_pid_rejected(self):
        with pytest.raises(TraceParseError):
            merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
100  10:00:00.000002 read(3</a>, <unfinished ...>
"""))

    def test_orphan_resumed_strict_rejected(self):
        with pytest.raises(TraceParseError):
            merge_unfinished(toks("""
100  10:00:00.000500 <... read resumed> ..., 5) = 5 <0.000499>
"""))

    def test_orphan_resumed_lenient_skipped(self):
        records, stats = merge_unfinished(toks("""
100  10:00:00.000500 <... read resumed> ..., 5) = 5 <0.000499>
"""), strict=False)
        assert records == []
        assert stats.orphan_resumed == 1

    def test_orphan_unfinished_at_eof_counted(self):
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
"""))
        assert records == []
        assert stats.orphan_unfinished == 1

    def test_exit_orphans_pending_call(self):
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
100  10:00:00.000002 +++ killed by SIGKILL +++
"""))
        assert records == []
        assert stats.orphan_unfinished == 1
        assert stats.skipped_exits == 1


class TestRestartFiltering:
    def test_erestartsys_dropped(self):
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, ..., 10) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.000100>
100  10:00:00.000200 read(3</a>, ..., 10) = 10 <0.000050>
"""))
        assert stats.dropped_restarts == 1
        assert len(records) == 1
        assert records[0].size == 10

    def test_restart_in_resumed_half_dropped(self):
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
100  10:00:00.000300 <... read resumed> ..., 10) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.000299>
"""))
        assert records == []
        assert stats.dropped_restarts == 1

    def test_signals_skipped_and_counted(self):
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 --- SIGCHLD {si_signo=SIGCHLD} ---
100  10:00:00.000002 close(3</a>) = 0 <0.000001>
"""))
        assert stats.skipped_signals == 1
        assert len(records) == 1


class TestCarryStates:
    """The merge states the live follower carries across polls:
    interleaved restarts, EOF orphans, inverted orderings."""

    def test_interleaved_restarts_across_pids(self):
        """Two pids blocked at once, both resumed halves interrupted:
        each pair merges by pid and is then dropped as a restart."""
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
200  10:00:00.000002 write(4</b>, <unfinished ...>
300  10:00:00.000003 close(5</c>) = 0 <0.000001>
100  10:00:00.000500 <... read resumed> ..., 10) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.000499>
200  10:00:00.000600 <... write resumed> ..., 10) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.000598>
100  10:00:00.000700 read(3</a>, ..., 10) = 10 <0.000050>
200  10:00:00.000800 write(4</b>, ..., 10) = 10 <0.000050>
"""))
        assert stats.dropped_restarts == 2
        assert stats.merged_pairs == 0
        assert stats.orphan_unfinished == 0
        assert [(r.pid, r.call) for r in records] == [
            (300, "close"), (100, "read"), (200, "write")]

    def test_unfinished_without_resumed_at_eof_multiple_pids(self):
        """Processes killed mid-call: every in-flight slot orphans at
        EOF, records after the unfinished lines still come through."""
        records, stats = merge_unfinished(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
200  10:00:00.000002 write(4</b>, <unfinished ...>
300  10:00:00.000003 close(5</c>) = 0 <0.000001>
"""))
        assert stats.orphan_unfinished == 2
        assert [(r.pid, r.call) for r in records] == [(300, "close")]

    def test_resumed_before_unfinished_ordering(self):
        """A resumed record preceding any unfinished one (trace cut
        mid-stream): strict rejects; lenient skips the orphan and the
        later well-formed pair still merges."""
        text = """
100  10:00:00.000100 <... read resumed> ..., 5) = 5 <0.000099>
100  10:00:00.000200 read(3</a>, <unfinished ...>
100  10:00:00.000900 <... read resumed> ..., 20) = 20 <0.000699>
"""
        with pytest.raises(TraceParseError, match="without a matching"):
            merge_unfinished(toks(text))
        records, stats = merge_unfinished(toks(text), strict=False)
        assert stats.orphan_resumed == 1
        assert stats.merged_pairs == 1
        (record,) = records
        assert record.size == 20
        assert record.start_us == toks(text)[1].start_us


class TestIncrementalMerger:
    """Carrying the merge state across feeds (the live follower path)."""

    def _lines(self, text: str):
        return toks(text)

    def test_tokenwise_feed_equals_batch(self):
        from repro.strace.resume import IncrementalMerger

        text = """
100  10:00:00.000001 read(3</a>, <unfinished ...>
200  10:00:00.000002 write(4</b>, <unfinished ...>
300  10:00:00.000003 close(5</c>) = 0 <0.000001>
200  10:00:00.000500 <... write resumed> ..., 10) = 10 <0.000498>
100  10:00:00.000900 <... read resumed> ..., 20) = 20 <0.000899>
300  10:00:00.001000 close(6</d>) = 0 <0.000001>
"""
        batch_records, batch_stats = merge_unfinished(toks(text))
        merger = IncrementalMerger()
        sealed = []
        for token in toks(text):
            sealed += merger.feed([token])
        sealed += merger.finish()
        assert sealed == batch_records
        assert merger.stats == batch_stats

    def test_sealing_waits_for_inflight_calls(self):
        from repro.strace.resume import IncrementalMerger

        merger = IncrementalMerger()
        assert merger.feed(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
300  10:00:00.000003 close(5</c>) = 0 <0.000001>
""")) == []
        assert merger.n_pending == 1
        assert merger.n_buffered == 1
        sealed = merger.feed(toks("""
100  10:00:00.000900 <... read resumed> ..., 20) = 20 <0.000899>
"""))
        # The merged read sorts before the close it was blocking.
        assert [(r.pid, r.call) for r in sealed] == [
            (100, "read"), (300, "close")]
        assert merger.finish() == []

    def test_sealed_records_are_final(self):
        """Records ahead of every in-flight call seal immediately."""
        from repro.strace.resume import IncrementalMerger

        merger = IncrementalMerger()
        sealed = merger.feed(toks("""
300  10:00:00.000001 close(5</c>) = 0 <0.000001>
100  10:00:00.000002 read(3</a>, <unfinished ...>
"""))
        assert [(r.pid, r.call) for r in sealed] == [(300, "close")]

    def test_finish_orphans_pending(self):
        from repro.strace.resume import IncrementalMerger

        merger = IncrementalMerger()
        merger.feed(toks("""
100  10:00:00.000001 read(3</a>, <unfinished ...>
"""))
        assert merger.finish() == []
        assert merger.stats.orphan_unfinished == 1

"""CSV adapter, log validation, DFG filtering, mapping composition."""

import pytest

from repro._util.errors import MappingError, ReproError, TraceParseError
from repro.sources.csv_log import read_csv_log, write_csv_log
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import (
    CallPath,
    CallTopDirs,
    ComposedMapping,
    RestrictedMapping,
    SiteVariables,
)
from repro.core.statistics import IOStatistics
from repro.pipeline.validate import validate_event_log, validation_report


class TestCsvAdapter:
    def test_roundtrip_from_strace(self, fig1_dir, tmp_path):
        original = EventLog.from_source(fig1_dir)
        csv_path = write_csv_log(original, tmp_path / "log.csv")
        loaded = read_csv_log(csv_path)
        assert loaded.n_events == original.n_events
        assert loaded.case_ids() == original.case_ids()
        original.apply_mapping_fn(CallTopDirs(levels=2))
        loaded.apply_mapping_fn(CallTopDirs(levels=2))
        assert DFG(loaded) == DFG(original)
        # Statistics also survive the trip.
        orig_stats = IOStatistics(original)
        load_stats = IOStatistics(loaded)
        for activity in orig_stats.activities():
            assert load_stats[activity].total_bytes == \
                orig_stats[activity].total_bytes

    def test_handwritten_csv(self, tmp_path):
        path = tmp_path / "ext.csv"
        path.write_text(
            "cid,host,rid,pid,call,start,dur,fp,size\n"
            "x,h1,1,5,read,100,50,/data/f,4096\n"
            "x,h1,1,5,close,200,2,/data/f,\n")
        log = read_csv_log(path)
        assert log.n_events == 2
        assert log.case_ids() == ["x1"]
        events = list(log.events())
        assert events[0].size == 4096
        assert events[1].size is None  # empty cell → missing

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "ext.csv"
        path.write_text(
            "cid,host,rid,pid,call,start,dur,fp,size,extra\n"
            "x,h1,1,5,read,100,50,/f,10,ignored\n")
        assert read_csv_log(path).n_events == 1

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("cid,host,rid\nx,h,1\n")
        with pytest.raises(TraceParseError, match="missing columns"):
            read_csv_log(path)

    def test_malformed_int_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "cid,host,rid,pid,call,start,dur,fp,size\n"
            "x,h,one,5,read,100,50,/f,10\n")
        with pytest.raises(TraceParseError, match="rid"):
            read_csv_log(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceParseError):
            read_csv_log(path)


class TestValidation:
    def test_clean_log(self, fig1_dir):
        log = EventLog.from_source(fig1_dir)
        assert validate_event_log(log) == []
        assert validation_report(log).startswith("OK")

    def test_empty_log_warning(self, fig1_dir):
        log = EventLog.from_source(fig1_dir).filtered_fp("/none")
        issues = validate_event_log(log)
        assert [i.rule for i in issues] == ["empty-log"]

    def test_duplicate_events_detected(self, tmp_path):
        line = "1  00:00:00.000100 read(3</f>, ..., 10) = 10 <0.000050>\n"
        (tmp_path / "x_h_1.st").write_text(line + line)
        log = EventLog.from_source(tmp_path)
        issues = validate_event_log(log)
        assert any(i.rule == "duplicate-events" and i.severity == "error"
                   for i in issues)

    def test_missing_duration_warning(self, tmp_path):
        path = tmp_path / "no_dur.csv"
        path.write_text(
            "cid,host,rid,pid,call,start,dur,fp,size\n"
            "x,h,1,5,read,100,,/f,10\n")
        log = read_csv_log(path)
        issues = validate_event_log(log)
        assert any(i.rule == "missing-duration" for i in issues)

    def test_size_on_non_transfer_warning(self, tmp_path):
        path = tmp_path / "odd.csv"
        path.write_text(
            "cid,host,rid,pid,call,start,dur,fp,size\n"
            "x,h,1,5,lseek,100,2,/f,4096\n")
        log = read_csv_log(path)
        issues = validate_event_log(log)
        assert any(i.rule == "size-on-non-transfer" for i in issues)

    def test_report_lists_issues(self, tmp_path):
        line = "1  00:00:00.000100 read(3</f>, ..., 10) = 10 <0.000050>\n"
        (tmp_path / "x_h_1.st").write_text(line + line)
        log = EventLog.from_source(tmp_path)
        text = validation_report(log)
        assert "duplicate-events" in text


class TestDfgFiltering:
    @pytest.fixture()
    def dfg(self, fig1_dir) -> DFG:
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        return DFG(log)

    def test_filtered_by_count(self, dfg):
        heavy = dfg.filtered_by_count(6)
        assert all(c >= 6 for c in heavy.edges().values())
        # The weight-12 self-loop survives; weight-3 edges are gone.
        assert heavy.edge_count("read:/usr/lib", "read:/usr/lib") == 12
        assert not heavy.has_edge("read:/etc/passwd", "read:/etc/group")

    def test_filtered_preserves_frequencies(self, dfg):
        heavy = dfg.filtered_by_count(6)
        assert heavy.node_frequency("read:/usr/lib") == \
            dfg.node_frequency("read:/usr/lib")

    def test_filter_threshold_validated(self, dfg):
        with pytest.raises(ReproError):
            dfg.filtered_by_count(0)

    def test_subgraph_induced(self, dfg):
        sub = dfg.subgraph({"read:/usr/lib", "read:/proc/filesystems"})
        assert sub.activities() == {"read:/usr/lib",
                                    "read:/proc/filesystems"}
        assert sub.has_edge("read:/usr/lib", "read:/proc/filesystems")
        # Sentinels retained with their edges to kept nodes.
        assert sub.edge_count(dfg.start_node(), "read:/usr/lib") == 6

    def test_subgraph_drops_cross_edges(self, dfg):
        sub = dfg.subgraph({"read:/usr/lib"})
        assert not sub.has_edge("read:/usr/lib",
                                "read:/proc/filesystems")


class TestComposedMapping:
    def test_first_match_wins(self, fig1_dir):
        log = EventLog.from_source(fig1_dir)
        composed = ComposedMapping([
            RestrictedMapping(CallPath(), fp_substring="/etc/passwd"),
            CallTopDirs(levels=2),
        ])
        log.apply_mapping_fn(composed)
        activities = log.activities()
        assert "read:/etc/passwd" in activities      # full path wins
        assert "read:/usr/lib" in activities         # fallback applies

    def test_partial_when_all_decline(self):
        from repro.core.event import Event
        composed = ComposedMapping([
            RestrictedMapping(CallPath(), fp_substring="/zzz"),
        ])
        event = Event(cid="a", host="h", rid=1, pid=2, call="read",
                      start=0, dur=1, fp="/etc/passwd", size=1)
        assert composed.map_event(event) is None

    def test_fast_path_composition(self):
        composed = ComposedMapping([
            RestrictedMapping(CallPath(), fp_substring="/etc"),
            CallTopDirs(levels=2),
        ])
        assert composed.uses_only_call_fp
        assert composed.map_call_fp("read", "/etc/passwd") == \
            "read:/etc/passwd"
        assert composed.map_call_fp("read", "/usr/lib/x.so") == \
            "read:/usr/lib"

    def test_event_level_member_disables_fast_path(self):
        composed = ComposedMapping([
            RestrictedMapping(CallPath(), predicate=lambda e: True),
        ])
        assert not composed.uses_only_call_fp
        with pytest.raises(MappingError):
            composed.map_call_fp("read", "/x")

    def test_empty_rejected(self):
        with pytest.raises(MappingError):
            ComposedMapping([])


class TestCliIntegration:
    def test_validate_command(self, fig1_dir, capsys):
        from repro.cli import main

        assert main(["validate", str(fig1_dir)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_command_error_exit(self, tmp_path, capsys):
        from repro.cli import main

        line = "1  00:00:00.000100 read(3</f>, ..., 10) = 10 <0.000050>\n"
        (tmp_path / "x_h_1.st").write_text(line + line)
        assert main(["validate", str(tmp_path)]) == 1

    def test_export_csv_and_reload(self, fig1_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "log.csv"
        assert main(["export-csv", str(fig1_dir), str(out)]) == 0
        assert main(["report", str(out), "--top", "2"]) == 0
        assert "rel.dur" in capsys.readouterr().out


class TestValidationEdgeRules:
    def test_unordered_case_detected(self):
        """The rule guards frames built outside EventLog's sorting."""
        import numpy as np
        from repro.core.frame import EventFrame, FramePools
        from repro.pipeline.validate import validate_event_log

        pools = FramePools()
        n = 3
        columns = {
            "case": np.full(n, pools.cases.intern("x1"), dtype=np.int32),
            "cid": np.full(n, pools.cids.intern("x"), dtype=np.int32),
            "host": np.full(n, pools.hosts.intern("h"), dtype=np.int32),
            "rid": np.full(n, 1, dtype=np.int64),
            "pid": np.full(n, 5, dtype=np.int64),
            "call": np.full(n, pools.calls.intern("read"),
                            dtype=np.int32),
            "start": np.array([300, 100, 200], dtype=np.int64),
            "dur": np.full(n, 10, dtype=np.int64),
            "fp": np.full(n, -1, dtype=np.int32),
            "size": np.full(n, -1, dtype=np.int64),
            "activity": np.full(n, -1, dtype=np.int32),
        }
        frame = EventFrame(pools, columns)

        class RawLog:
            """Log-shaped wrapper that bypasses EventLog's sort."""
            def __init__(self, fr):
                self.frame = fr
                self.n_events = len(fr)
                self.n_cases = 1

        issues = validate_event_log(RawLog(frame),
                                    check_uniqueness=False)
        assert any(i.rule == "unordered-case" for i in issues)

    def test_negative_duration_via_csv(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text(
            "cid,host,rid,pid,call,start,dur,fp,size\n"
            "x,h,1,5,read,100,-5,/f,10\n")
        log = read_csv_log(path)
        issues = validate_event_log(log)
        assert any(i.rule == "negative-duration" and
                   i.severity == "error" for i in issues)

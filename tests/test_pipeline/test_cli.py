"""The st-inspector command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestSimulateCommands:
    def test_simulate_ls(self, tmp_path, capsys):
        out = run(capsys, "simulate-ls", str(tmp_path / "traces"))
        assert "wrote 3 'ls' traces" in out
        assert (tmp_path / "traces" / "a_host1_9042.st").exists()

    def test_simulate_ior_small(self, tmp_path, capsys):
        out = run(capsys, "simulate-ior", str(tmp_path / "ior"),
                  "--ranks", "4", "--ranks-per-node", "2",
                  "--segments", "1", "--cid", "t")
        assert "simulated 4 ranks" in out
        assert len(list((tmp_path / "ior").glob("*.st"))) == 4


class TestPipelineCommands:
    @pytest.fixture()
    def traces(self, tmp_path, capsys):
        directory = tmp_path / "traces"
        run(capsys, "simulate-ls", str(directory))
        return directory

    def test_convert(self, traces, tmp_path, capsys):
        out = run(capsys, "convert", str(traces),
                  str(tmp_path / "log.elog"))
        assert "6 cases" in out

    def test_synthesize_ascii(self, traces, capsys):
        out = run(capsys, "synthesize", str(traces))
        assert "NODES" in out
        assert "read:/usr/lib" in out

    def test_synthesize_dot_to_file(self, traces, tmp_path, capsys):
        out_file = tmp_path / "g.dot"
        run(capsys, "synthesize", str(traces), "--format", "dot",
            "--output", str(out_file))
        assert out_file.read_text().startswith("digraph")

    def test_synthesize_with_filter_and_mapping(self, traces, capsys):
        out = run(capsys, "synthesize", str(traces),
                  "--filter", "/usr/lib", "--mapping", "path")
        assert "libselinux" in out

    def test_synthesize_from_store(self, traces, tmp_path, capsys):
        store = tmp_path / "log.elog"
        run(capsys, "convert", str(traces), str(store))
        out = run(capsys, "synthesize", str(store))
        assert "read:/usr/lib" in out

    def test_report(self, traces, capsys):
        out = run(capsys, "report", str(traces), "--top", "3")
        assert "rel.dur" in out

    def test_compare(self, traces, capsys):
        out = run(capsys, "compare", str(traces), "--green", "a")
        assert "PARTITION COMPARISON" in out
        assert "[R]" in out

    def test_timeline(self, traces, capsys):
        out = run(capsys, "timeline", str(traces),
                  "--activity", "read:/usr/lib")
        assert "timeline" in out

    def test_exclude_calls(self, traces, capsys):
        out = run(capsys, "synthesize", str(traces),
                  "--exclude-calls", "write")
        assert "write:/dev/pts" not in out


class TestErrors:
    def test_missing_source_returns_error_code(self, tmp_path, capsys):
        code = main(["synthesize", str(tmp_path / "missing-dir")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_partition_returns_error_code(self, tmp_path, capsys):
        directory = tmp_path / "traces"
        main(["simulate-ls", str(directory)])
        capsys.readouterr()
        code = main(["compare", str(directory), "--green", "zzz"])
        assert code == 2

    @pytest.mark.parametrize("value", ["0", "-2", "zero"])
    def test_invalid_workers_rejected_at_parse_time(self, tmp_path,
                                                    value, capsys):
        """--workers 0 / negatives fail with a readable argparse error
        before any directory is touched (not an opaque pool failure)."""
        with pytest.raises(SystemExit) as excinfo:
            main(["synthesize", str(tmp_path), "--workers", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err
        assert "must be >= 1" in err or "invalid int value" in err


class TestExtendedCommands:
    @pytest.fixture()
    def traces(self, tmp_path, capsys):
        directory = tmp_path / "traces"
        run(capsys, "simulate-ls", str(directory))
        return directory

    def test_variants(self, traces, capsys):
        out = run(capsys, "variants", str(traces), "--top", "2")
        assert "2 variants" in out
        assert "x3" in out

    def test_diff(self, traces, capsys):
        out = run(capsys, "diff", str(traces), "--green", "a")
        assert "DFG DIFF" in out
        assert "Jaccard" in out

    def test_html_report(self, traces, tmp_path, capsys):
        out_file = tmp_path / "r.html"
        run(capsys, "html-report", str(traces),
            "--output", str(out_file), "--green", "a",
            "--timelines", "read:/usr/lib")
        text = out_file.read_text()
        assert "<svg" in text
        assert "Partition comparison" in text
        assert "Timeline: read:/usr/lib" in text

    def test_profile(self, traces, capsys):
        out = run(capsys, "profile", str(traces),
                  "--activity", "read:/usr/lib")
        assert "concurrency" in out
        assert "peak" in out

    def test_counters(self, traces, capsys):
        out = run(capsys, "counters", str(traces), "--top", "3")
        assert "io frac" in out
        assert "b9157" in out


class TestSourceSchemes:
    """Every analysis subcommand accepts every registered scheme."""

    @pytest.fixture()
    def traces(self, tmp_path, capsys):
        directory = tmp_path / "traces"
        run(capsys, "simulate-ls", str(directory))
        return directory

    @pytest.fixture()
    def store(self, traces, tmp_path, capsys):
        path = tmp_path / "log.elog"
        run(capsys, "convert", str(traces), str(path))
        return path

    @pytest.fixture()
    def csv_file(self, store, tmp_path, capsys):
        path = tmp_path / "log.csv"
        run(capsys, "export-csv", str(store), str(path))
        return path

    def test_report_on_every_scheme(self, traces, store, csv_file,
                                    capsys):
        specs = [f"strace:{traces}", f"elog:{store}", f"csv:{csv_file}",
                 "sim:ls"]
        outputs = [run(capsys, "report", spec, "--top", "3")
                   for spec in specs]
        assert "rel.dur" in outputs[0]
        # Same events however they arrive: the tables agree verbatim.
        assert len(set(outputs)) == 1

    def test_synthesize_on_sim_scheme(self, capsys):
        out = run(capsys, "synthesize",
                  "sim:ior?ranks=4&ranks_per_node=2&segments=1")
        assert "NODES" in out

    def test_diff_on_csv_scheme(self, csv_file, capsys):
        out = run(capsys, "diff", f"csv:{csv_file}", "--green", "a")
        assert "DFG DIFF" in out

    def test_convert_from_sim_scheme(self, tmp_path, capsys):
        out = run(capsys, "convert", "sim:ls",
                  str(tmp_path / "sim.elog"))
        assert "6 cases" in out
        out = run(capsys, "report", f"elog:{tmp_path / 'sim.elog'}")
        assert "rel.dur" in out

    def test_convert_from_csv_scheme(self, csv_file, tmp_path, capsys):
        out = run(capsys, "convert", f"csv:{csv_file}",
                  str(tmp_path / "fromcsv.elog"))
        assert "6 cases" in out

    def test_unknown_scheme_exits_2_with_hint(self, capsys):
        code = main(["report", "bogus:somewhere"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown source scheme 'bogus'" in err
        assert "strace:" in err and "sim:" in err  # the hint

    def test_missing_bare_path_exits_2_with_hint(self, tmp_path,
                                                 capsys):
        code = main(["report", str(tmp_path / "nothing-here")])
        assert code == 2
        err = capsys.readouterr().err
        assert "source not found" in err
        assert "autodetected" in err

    def test_bad_sim_option_exits_2(self, capsys):
        code = main(["report", "sim:ior?bogus=1"])
        assert code == 2
        assert "unknown option" in capsys.readouterr().err

    def test_workers_on_store_warns_not_silently_ignored(
            self, store, capsys):
        from repro.sources import UnsupportedSourceOptionWarning

        with pytest.warns(UnsupportedSourceOptionWarning,
                          match="workers=3 ignored"):
            run(capsys, "report", f"elog:{store}", "--workers", "3")

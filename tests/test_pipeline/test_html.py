"""Standalone HTML reports."""

import pytest

from repro.core.coloring import PartitionColoring, StatisticsColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.partition import PartitionEL
from repro.core.statistics import IOStatistics
from repro.pipeline.html import render_html_report, save_html_report


@pytest.fixture()
def mapped_log(fig1_dir) -> EventLog:
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return log


class TestRenderHtml:
    def test_structure(self, mapped_log):
        text = render_html_report(mapped_log, title="T")
        assert text.startswith("<!DOCTYPE html>")
        assert text.rstrip().endswith("</html>")
        assert "<title>T</title>" in text
        assert "<svg" in text            # embedded graph
        assert "<table>" in text         # statistics table
        assert "Trace variants" in text

    def test_all_activities_in_table(self, mapped_log):
        text = render_html_report(mapped_log)
        for activity in mapped_log.activities():
            assert activity in text

    def test_metadata_line(self, mapped_log):
        text = render_html_report(mapped_log)
        assert "75 events" in text
        assert "6 cases" in text
        assert "a, b" in text

    def test_partition_section(self, mapped_log):
        green_log, red_log = PartitionEL(mapped_log)
        coloring = PartitionColoring(DFG(green_log), DFG(red_log),
                                     IOStatistics(mapped_log))
        text = render_html_report(mapped_log, styler=coloring)
        assert "Partition comparison" in text
        assert "tag-red" in text
        assert "read:/etc/passwd" in text

    def test_no_partition_section_for_statistics_styler(self, mapped_log):
        stats = IOStatistics(mapped_log)
        text = render_html_report(mapped_log,
                                  styler=StatisticsColoring(stats))
        assert "Partition comparison" not in text

    def test_timeline_section(self, mapped_log):
        text = render_html_report(
            mapped_log, timeline_activities=["read:/usr/lib"])
        assert "Timeline: read:/usr/lib" in text

    def test_unknown_timeline_activity_skipped(self, mapped_log):
        text = render_html_report(
            mapped_log, timeline_activities=["ghost:/x"])
        assert "Timeline:" not in text

    def test_html_escaping(self, fig1_dir):
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(lambda e: f"<{e['call']}>&")
        text = render_html_report(log)
        assert "<read>" not in text
        assert "&lt;read&gt;&amp;" in text


class TestSaveHtml:
    def test_writes_file(self, mapped_log, tmp_path):
        out = save_html_report(mapped_log, tmp_path / "r.html",
                               title="saved")
        assert out.exists()
        assert "saved" in out.read_text()

"""Plain-text reports."""

import pytest

from repro.core.coloring import PartitionColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.partition import PartitionEL
from repro.core.statistics import IOStatistics
from repro.pipeline.report import (
    activity_report,
    comparison_report,
    variants_report,
)


@pytest.fixture()
def mapped_log(fig1_dir) -> EventLog:
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return log


class TestActivityReport:
    def test_contains_all_activities(self, mapped_log):
        text = activity_report(IOStatistics(mapped_log))
        for activity in mapped_log.activities():
            assert activity in text

    def test_columns_present(self, mapped_log):
        text = activity_report(IOStatistics(mapped_log))
        for header in ("activity", "events", "rel.dur", "bytes",
                       "proc.rate", "max.conc", "ranks", "cases"):
            assert header in text

    def test_top_limits_rows(self, mapped_log):
        text = activity_report(IOStatistics(mapped_log), top=2)
        # header + rule + 2 rows + blank + total line
        rows = [l for l in text.splitlines()
                if l and not l.startswith(("activity", "-", "total"))]
        assert len(rows) == 2

    def test_total_line(self, mapped_log):
        assert "total I/O time" in activity_report(
            IOStatistics(mapped_log))


class TestVariantsReport:
    def test_multiset_notation(self, mapped_log):
        text = variants_report(mapped_log)
        assert "6 traces, 2 variants" in text
        assert "x3" in text  # both variants have multiplicity 3

    def test_long_traces_elided(self, mapped_log):
        text = variants_report(mapped_log)
        assert "..." in text  # the 19-activity ls -l trace is cut

    def test_top_limit(self, mapped_log):
        text = variants_report(mapped_log, top=1)
        assert text.count("x3") == 1


class TestComparisonReport:
    def test_fig3d_summary(self, mapped_log):
        green_log, red_log = PartitionEL(mapped_log)
        coloring = PartitionColoring(
            DFG(green_log), DFG(red_log), IOStatistics(mapped_log))
        text = comparison_report(coloring)
        assert "red-exclusive nodes (4):" in text
        assert "read:/etc/passwd" in text
        assert "green-exclusive nodes (0):" in text
        assert "(none)" in text
        assert "green-exclusive edges: 1;" in text

    def test_loads_attached_to_nodes(self, mapped_log):
        green_log, red_log = PartitionEL(mapped_log)
        stats = IOStatistics(mapped_log)
        coloring = PartitionColoring(DFG(green_log), DFG(red_log))
        text = comparison_report(coloring, stats)
        assert "Load:" in text

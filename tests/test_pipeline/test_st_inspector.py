"""The paper's Fig. 6 listing must run against the facade as printed."""

import pytest

from repro.core.eventlog import EventLog
from repro.elstore.writer import write_event_log


@pytest.fixture()
def store_path(fig1_dir, tmp_path):
    return write_event_log(EventLog.from_source(fig1_dir),
                           tmp_path / "fig1.elog")


def test_paper_fig6_listing_runs_verbatim(store_path):
    """Every step of the paper's Fig. 6, with the printed names.

    The only permitted deviation is the storage backend behind
    ``EventLogH5`` (our .elog container instead of HDF5 — DESIGN.md §2).
    """
    from repro.st_inspector import (
        DFG,
        DFGViewer,
        EventLogH5,
        IOStatistics,
        PartitionColoring,
        PartitionEL,
        StatisticsColoring,
    )

    # 0) Pointer to the event-log file
    event_log = EventLogH5(store_path)

    # 1) Filter the event log
    event_log.apply_fp_filter("/usr/lib")

    # 2a/2b) Implement and apply the mapping fn (verbatim from Fig. 6,
    # modulo the listing's two typos: `dir` for `dirs` and the nested
    # f-string quotes, which are invalid Python as printed).
    def f(event) -> str:
        fp = event["fp"]
        dirs = fp.split("/")
        if len(dirs) > 2:
            fp = f"/{dirs[1]}/{dirs[2]}"
        return f"{event['call']}\n{fp}"

    event_log.apply_mapping_fn(f)

    # 3) Construct the DFG
    dfg = DFG(event_log)

    # 4) Compute I/O statistics
    stats = IOStatistics()
    stats.compute_statistics(event_log)

    # 5a) Statistics-based coloring
    colored_dfg = DFGViewer(dfg, styler=StatisticsColoring(stats))
    rendered = colored_dfg.render()
    assert "read\\n/usr/lib" in rendered
    assert "Load:" in rendered

    # 5b) Partition-based coloring
    green_event_log, red_event_log = PartitionEL(event_log)
    green_dfg = DFG(green_event_log)
    red_dfg = DFG(red_event_log)
    partition_coloring = PartitionColoring(green_dfg, red_dfg, stats)
    colored_dfg = DFGViewer(dfg, styler=partition_coloring)
    assert colored_dfg.render().startswith("digraph")


def test_eventlogh5_accepts_trace_directory(fig1_dir):
    from repro.st_inspector import EventLogH5

    event_log = EventLogH5(fig1_dir)
    assert event_log.n_cases == 6


def test_star_import_provides_fig6_names():
    import repro.st_inspector as facade

    names = set(facade.__all__)
    for required in ("EventLogH5", "DFG", "IOStatistics", "DFGViewer",
                     "StatisticsColoring", "PartitionEL",
                     "PartitionColoring"):
        assert required in names

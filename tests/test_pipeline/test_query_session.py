"""Query composition and the end-to-end InspectionSession."""

import pytest

from repro._util.errors import MappingError
from repro.core.mapping import CallPathTail, CallTopDirs
from repro.pipeline.query import Query
from repro.pipeline.session import InspectionSession


class TestQuery:
    def test_empty_query_is_identity(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        log = session.event_log
        assert Query().apply(log) is log

    def test_fp_contains(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        q = Query().fp_contains("/usr/lib")
        assert q.apply(session.event_log).n_events == 18

    def test_conjunction(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        q = Query().fp_contains("/etc").calls("read").cids("b")
        filtered = q.apply(session.event_log)
        # ls -l /etc reads: locale.alias×2 + nsswitch×2 + passwd + group
        assert filtered.n_events == 3 * 6

    def test_not_calls(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        q = Query().not_calls("write")
        assert q.apply(session.event_log).n_events == 75 - 15

    def test_time_window(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        frame = session.event_log.frame
        lo = int(frame.column("start").min())
        q = Query().time_window(lo, lo + 1)
        assert q.apply(session.event_log).n_events >= 1

    def test_fp_matches_and_where(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        q = Query().fp_matches(lambda p: p.endswith(".conf"))
        assert q.apply(session.event_log).n_events == 6
        q2 = Query().where(lambda fr: fr.call_in(["write"]), "writes")
        assert q2.apply(session.event_log).n_events == 15

    def test_describe(self):
        q = Query().fp_contains("/x").calls("read")
        text = q.describe()
        assert "/x" in text and "read" in text and "AND" in text
        assert Query().describe() == "(all events)"
        assert len(q) == 2


class TestSession:
    def test_fig6_pipeline(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        session.filter_fp("/usr/lib").map_default()
        assert session.dfg.activities() == {"read:/usr/lib"}
        assert session.stats["read:/usr/lib"].event_count == 18

    def test_requires_mapping(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        with pytest.raises(MappingError):
            _ = session.dfg
        with pytest.raises(MappingError):
            _ = session.stats

    def test_artifacts_cached_and_invalidated(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        session.map_default()
        dfg1 = session.dfg
        assert session.dfg is dfg1          # cached
        session.filter_fp("/etc")
        session.map_default()
        assert session.dfg is not dfg1      # invalidated

    def test_render_formats(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        session.map_default()
        assert "NODES" in session.render("ascii")
        assert session.render("dot").startswith("digraph")

    def test_save(self, fig1_dir, tmp_path):
        session = InspectionSession.from_source(fig1_dir)
        session.map_default()
        out = session.save(tmp_path / "graph.svg")
        assert out.read_text().startswith("<svg")

    def test_compare_cids(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        session.map_default()
        viewer = session.compare_cids(green=["a"])
        text = viewer.render("ascii")
        assert "[R] read:/etc/passwd" in text

    def test_custom_mapping(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        session.filter_fp("/usr/lib").map(CallPathTail(levels=2))
        assert "read:x86_64-linux-gnu/libc.so.6" in \
            session.dfg.activities()

    def test_query_filter(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        session.filter(Query().calls("write")).map_default()
        assert session.dfg.activities() == {"write:/dev/pts"}

    def test_timeline(self, ls_sim_dir):
        session = InspectionSession.from_source(ls_sim_dir)
        session.map_default()
        text = session.timeline("read:/usr/lib")
        assert "timeline" in text
        svg = session.timeline("read:/usr/lib", fmt="svg")
        assert svg.startswith("<svg")

    def test_from_store(self, fig1_dir, tmp_path):
        from repro.core.eventlog import EventLog
        from repro.elstore.writer import write_event_log

        path = write_event_log(
            EventLog.from_source(fig1_dir), tmp_path / "x.elog")
        session = InspectionSession.from_source(path)
        session.map_default()
        assert session.dfg.n_nodes == 10


class TestSessionExtensions:
    def test_profile(self, ls_sim_dir):
        session = InspectionSession.from_source(ls_sim_dir)
        session.map_default()
        text = session.profile("read:/usr/lib")
        assert "peak 2" in text
        assert session.profile("read:/usr/lib", fmt="svg") \
            .startswith("<svg")

    def test_counters(self, fig1_dir):
        session = InspectionSession.from_source(fig1_dir)
        text = session.counters()
        assert "a9042" in text

    def test_html_report(self, fig1_dir, tmp_path):
        session = InspectionSession.from_source(fig1_dir)
        session.map_default()
        out = session.html_report(tmp_path / "s.html", title="sess")
        assert "sess" in out.read_text()

"""Darshan-style per-case counters."""

import pytest

from repro.core.eventlog import EventLog
from repro.pipeline.counters import case_counters, counters_report


@pytest.fixture()
def log(fig1_dir) -> EventLog:
    return EventLog.from_source(fig1_dir)


class TestCaseCounters:
    def test_one_row_per_case(self, log):
        counters = case_counters(log)
        assert [c.case_id for c in counters] == [
            "a9042", "a9043", "a9045", "b9157", "b9158", "b9160"]

    def test_fig2a_counts(self, log):
        a9042 = case_counters(log)[0]
        assert a9042.n_events == 8
        assert a9042.n_reads == 7
        assert a9042.n_writes == 1
        assert a9042.n_opens == 0
        assert a9042.n_seeks == 0

    def test_fig2a_bytes(self, log):
        a9042 = case_counters(log)[0]
        # 832×3 + 478 + 0 + 2996 + 0 bytes read, 50 written.
        assert a9042.bytes_read == 3 * 832 + 478 + 2996
        assert a9042.bytes_written == 50

    def test_fig2a_io_time(self, log):
        a9042 = case_counters(log)[0]
        assert a9042.io_time_us == 203 + 79 + 87 + 52 + 40 + 41 + 44 + 111
        assert a9042.write_time_us == 111
        assert a9042.read_time_us == a9042.io_time_us - 111

    def test_span_and_fraction(self, log):
        a9042 = case_counters(log)[0]
        assert a9042.span_us > a9042.io_time_us
        assert 0 < a9042.io_fraction < 1

    def test_distinct_files(self, log):
        a9042 = case_counters(log)[0]
        # 3 libs + /proc/filesystems + /etc/locale.alias + /dev/pts/7.
        assert a9042.distinct_files == 6

    def test_identity_attributes(self, log):
        b9157 = [c for c in case_counters(log)
                 if c.case_id == "b9157"][0]
        assert b9157.cid == "b"
        assert b9157.host == "host1"
        assert b9157.rid == 9157

    def test_ior_counters_include_opens_and_seeks(self, small_ior_dir):
        log = EventLog.from_source(small_ior_dir)
        counters = case_counters(log)
        ssf = [c for c in counters if c.cid == "ssf"]
        assert all(c.n_opens >= 1 for c in ssf)
        assert all(c.bytes_written > 0 for c in ssf)
        # Experiment-A call set excludes lseek.
        assert all(c.n_seeks == 0 for c in ssf)


class TestCountersReport:
    def test_contains_case_rows(self, log):
        text = counters_report(log)
        assert "a9042" in text
        assert "io frac" in text

    def test_top_limits(self, log):
        text = counters_report(log, top=2)
        data_rows = [l for l in text.splitlines()[2:] if l.strip()]
        assert len(data_rows) == 2

    def test_sorted_by_io_time(self, log):
        text = counters_report(log)
        rows = text.splitlines()[2:]
        # ls -l cases (heavier) come first.
        assert rows[0].lstrip().startswith("b")

"""DOT emission: determinism, Fig. 3a label semantics, styling."""

import pytest

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.coloring import PartitionColoring, StatisticsColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.partition import PartitionEL
from repro.core.render.dot import render_dot
from repro.core.statistics import IOStatistics


@pytest.fixture()
def pipeline(fig1_dir):
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return log, DFG(log), IOStatistics(log)


class TestStructure:
    def test_valid_digraph_wrapper(self, pipeline):
        _, dfg, _ = pipeline
        text = render_dot(dfg)
        assert text.startswith("digraph DFG {")
        assert text.rstrip().endswith("}")

    def test_deterministic(self, pipeline):
        _, dfg, stats = pipeline
        assert render_dot(dfg, stats) == render_dot(dfg, stats)

    def test_every_node_and_edge_present(self, pipeline):
        _, dfg, _ = pipeline
        text = render_dot(dfg)
        for activity in dfg.activities():
            assert f'"{activity}"' in text
        for (a1, a2), count in dfg.edges().items():
            assert f'"{a1}" -> "{a2}" [label="{count}"' in text

    def test_sentinel_shapes(self, pipeline):
        _, dfg, _ = pipeline
        text = render_dot(dfg)
        assert "shape=circle" in text  # ● filled circle
        assert "shape=square" in text  # ■ filled square

    def test_rankdir_option(self, pipeline):
        _, dfg, _ = pipeline
        assert "rankdir=LR;" in render_dot(dfg, rankdir="LR")


class TestLabels:
    def test_fig3a_node_semantics(self, pipeline):
        """Node label stacks CALL / PATH / Load / DR per Fig. 3a."""
        _, dfg, stats = pipeline
        text = render_dot(dfg, stats)
        record = stats["read:/usr/lib"]
        expected = (f'label="read\\n/usr/lib\\n{record.load_label}'
                    f'\\n{record.dr_label}"')
        assert expected in text

    def test_ranks_line_optional(self, pipeline):
        _, dfg, stats = pipeline
        without = render_dot(dfg, stats)
        with_ranks = render_dot(dfg, stats, show_ranks=True)
        assert "Ranks:" not in without
        assert "Ranks: 3" in with_ranks  # Fig. 3c style

    def test_no_stats_gives_bare_activity_labels(self, pipeline):
        _, dfg, _ = pipeline
        text = render_dot(dfg)
        assert 'label="read\\n/usr/lib"' in text
        assert "Load" not in text

    def test_quote_escaping(self):
        dfg = DFG.from_counts({('say "hi"', "b"): 1})
        text = render_dot(dfg)
        assert '\\"hi\\"' in text


class TestStyling:
    def test_statistics_coloring_fills(self, pipeline):
        _, dfg, stats = pipeline
        text = render_dot(dfg, stats, StatisticsColoring(stats))
        assert 'fillcolor="#08306b"' in text  # darkest blue somewhere

    def test_partition_coloring_colors(self, pipeline):
        log, dfg, stats = pipeline
        green_log, red_log = PartitionEL(log)
        coloring = PartitionColoring(DFG(green_log), DFG(red_log), stats)
        text = render_dot(dfg, stats, coloring)
        assert 'fillcolor="#fc9272"' in text    # red node fill
        assert 'color="#1a7a1a"' in text        # green edge stroke


class TestEdgeWidthScaling:
    def test_heavy_edges_thicker(self, pipeline):
        _, dfg, _ = pipeline
        from repro.core.render.dot import render_dot as rd
        text = rd(dfg, scale_edge_width=True)
        # The weight-12 self-loop gets the maximal width 3.5; a
        # weight-3 edge gets something strictly smaller.
        lines = {l for l in text.splitlines() if "->" in l}
        heavy = next(l for l in lines if 'label="12"' in l)
        light = next(l for l in lines if 'label="3"' in l)
        heavy_width = float(heavy.split("penwidth=")[1].rstrip("];"))
        light_width = float(light.split("penwidth=")[1].rstrip("];"))
        assert heavy_width > light_width > 1.0

    def test_styler_penwidth_wins(self, pipeline):
        log, dfg, stats = pipeline
        green_log, red_log = PartitionEL(log)
        coloring = PartitionColoring(DFG(green_log), DFG(red_log))
        from repro.core.render.dot import render_dot as rd
        text = rd(dfg, stats, coloring, scale_edge_width=True)
        # Partition-colored edges keep their 1.6 width.
        assert "penwidth=1.6" in text

    def test_off_by_default(self, pipeline):
        _, dfg, _ = pipeline
        from repro.core.render.dot import render_dot as rd
        text = rd(dfg)
        for line in text.splitlines():
            if "->" in line:
                assert "penwidth=1" in line

"""Self-contained SVG and ASCII rendering."""

import pytest

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.coloring import PartitionColoring, StatisticsColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.partition import PartitionEL
from repro.core.render.ascii import render_ascii
from repro.core.render.svg import render_svg
from repro.core.statistics import IOStatistics


@pytest.fixture()
def pipeline(fig1_dir):
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return log, DFG(log), IOStatistics(log)


class TestSvg:
    def test_wellformed_xml(self, pipeline):
        import xml.etree.ElementTree as ET
        _, dfg, stats = pipeline
        text = render_svg(dfg, stats)
        root = ET.fromstring(text)
        assert root.tag.endswith("svg")

    def test_every_activity_labelled(self, pipeline):
        _, dfg, stats = pipeline
        text = render_svg(dfg, stats)
        # Activities render as call + path text lines.
        assert ">read<" in text
        assert ">/usr/lib<" in text
        assert "Load:" in text
        assert "DR:" in text

    def test_edge_counts_rendered(self, pipeline):
        _, dfg, _ = pipeline
        text = render_svg(dfg)
        assert ">6<" in text  # the /usr/lib self-loop weight

    def test_title(self, pipeline):
        _, dfg, _ = pipeline
        assert "my title" in render_svg(dfg, title="my title")

    def test_xml_escaping(self):
        dfg = DFG.from_counts({("a<b>&c", "d"): 1})
        text = render_svg(dfg)
        assert "a&lt;b&gt;&amp;c" in text

    def test_partition_colors_in_svg(self, pipeline):
        log, dfg, stats = pipeline
        green_log, red_log = PartitionEL(log)
        coloring = PartitionColoring(DFG(green_log), DFG(red_log))
        text = render_svg(dfg, stats, coloring)
        assert "#fc9272" in text  # red fill present

    def test_empty_dfg(self):
        text = render_svg(DFG())
        assert "<svg" in text


class TestAscii:
    def test_all_nodes_and_edges_listed(self, pipeline):
        _, dfg, stats = pipeline
        text = render_ascii(dfg, stats)
        assert "read:/usr/lib" in text
        assert "-[6]->" in text
        assert START_ACTIVITY in text
        assert END_ACTIVITY in text

    def test_stats_lines(self, pipeline):
        _, dfg, stats = pipeline
        text = render_ascii(dfg, stats)
        assert "Load:" in text
        assert "MB/s" in text

    def test_partition_tags(self, pipeline):
        log, dfg, stats = pipeline
        green_log, red_log = PartitionEL(log)
        coloring = PartitionColoring(DFG(green_log), DFG(red_log))
        text = render_ascii(dfg, stats, coloring)
        assert "[R] read:/etc/passwd" in text
        assert "[G] read:/etc/locale.alias -[3]-> write:/dev/pts" in text

    def test_statistics_bars(self, pipeline):
        _, dfg, stats = pipeline
        text = render_ascii(dfg, stats, StatisticsColoring(stats))
        assert "|####" in text  # heaviest activity bar

    def test_show_ranks(self, pipeline):
        _, dfg, stats = pipeline
        assert "Ranks: 3" in render_ascii(dfg, stats, show_ranks=True)

    def test_edges_sorted_by_count_desc(self, pipeline):
        _, dfg, _ = pipeline
        text = render_ascii(dfg)
        edge_lines = [l for l in text.splitlines() if "-[" in l]
        counts = [int(l.split("-[")[1].split("]")[0])
                  for l in edge_lines]
        assert counts == sorted(counts, reverse=True)

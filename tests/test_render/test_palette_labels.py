"""Color palettes and node-label composition."""

import pytest
from hypothesis import given, strategies as st

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.palette import (
    BLUES,
    GREENS,
    pick_font_color,
    relative_luminance,
    shade,
)
from repro.core.render.labels import activity_label_lines, node_label_lines
from repro.core.statistics import IOStatistics


class TestShade:
    def test_endpoints(self):
        assert shade(BLUES, 0.0) == BLUES[0]
        assert shade(BLUES, 1.0) == BLUES[-1]

    def test_midpoint_interpolation(self):
        assert shade(["#000000", "#ffffff"], 0.5) == "#808080"

    def test_clamping(self):
        assert shade(BLUES, -5.0) == BLUES[0]
        assert shade(BLUES, 5.0) == BLUES[-1]

    def test_single_color_palette(self):
        assert shade(["#123456"], 0.7) == "#123456"

    def test_empty_palette_rejected(self):
        with pytest.raises(ValueError):
            shade([], 0.5)

    @given(st.floats(min_value=0, max_value=1))
    def test_monotone_luminance_on_blues(self, t):
        """Darker shade for larger t — the paper's 'higher rd_f, darker
        blue' rule must hold continuously."""
        lighter = shade(BLUES, max(0.0, t - 0.2))
        darker = shade(BLUES, min(1.0, t + 0.2))
        assert relative_luminance(darker) <= \
            relative_luminance(lighter) + 1e-9


class TestFontColor:
    def test_black_on_light(self):
        assert pick_font_color("#ffffff") == "#000000"
        assert pick_font_color(BLUES[0]) == "#000000"

    def test_white_on_dark(self):
        assert pick_font_color("#000000") == "#ffffff"
        assert pick_font_color(BLUES[-1]) == "#ffffff"

    def test_luminance_extremes(self):
        assert relative_luminance("#000000") == 0.0
        assert relative_luminance("#ffffff") == pytest.approx(1.0)


class TestActivityLabelLines:
    def test_colon_separator_split(self):
        assert activity_label_lines("read:/usr/lib") == \
            ["read", "/usr/lib"]

    def test_newline_form_from_fig6_mapping(self):
        assert activity_label_lines("read\n/usr/lib") == \
            ["read", "/usr/lib"]

    def test_bare_call(self):
        assert activity_label_lines("read") == ["read"]

    def test_sentinels_untouched(self):
        assert activity_label_lines(START_ACTIVITY) == [START_ACTIVITY]
        assert activity_label_lines(END_ACTIVITY) == [END_ACTIVITY]

    def test_path_with_extra_colons(self):
        # Only the first separator splits.
        assert activity_label_lines("read:/a:b") == ["read", "/a:b"]


class TestNodeLabelLines:
    @pytest.fixture()
    def stats(self, fig1_dir) -> IOStatistics:
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        return IOStatistics(log)

    def test_full_stack_fig3a(self, stats):
        lines = node_label_lines("read:/usr/lib", stats)
        assert lines[0] == "read"
        assert lines[1] == "/usr/lib"
        assert lines[2].startswith("Load:")
        assert lines[3].startswith("DR:")

    def test_ranks_line(self, stats):
        lines = node_label_lines("read:/usr/lib", stats,
                                 show_ranks=True)
        assert lines[-1] == "Ranks: 6"

    def test_without_stats(self):
        assert node_label_lines("read:/x") == ["read", "/x"]

    def test_unknown_activity_no_stat_lines(self, stats):
        assert node_label_lines("ghost:/x", stats) == ["ghost", "/x"]

"""Timeline plots (Fig. 5) and the DFGViewer facade."""

import xml.etree.ElementTree as ET

import pytest

from repro._util.errors import RenderError
from repro.core.coloring import StatisticsColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.render.timeline import (
    render_timeline_ascii,
    render_timeline_svg,
)
from repro.core.render.viewer import DFGViewer
from repro.core.statistics import IOStatistics


@pytest.fixture()
def cb_stats(ls_sim_dir) -> IOStatistics:
    log = EventLog.from_source(ls_sim_dir, cids={"b"})
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return IOStatistics(log)


class TestTimelineSvg:
    def test_fig5_rows(self, cb_stats):
        rows = cb_stats.timeline("read:/usr/lib")
        text = render_timeline_svg(rows, activity="read:/usr/lib")
        root = ET.fromstring(text)
        assert root.tag.endswith("svg")
        # One label per case (b9157, b9158, b9160).
        assert "b9157" in text and "b9158" in text and "b9160" in text
        # 9 bars: 3 /usr/lib reads per case.
        assert text.count('fill="#4292c6"') == 9

    def test_empty(self):
        assert "empty" in render_timeline_svg([])

    def test_axis_annotation(self, cb_stats):
        text = render_timeline_svg(cb_stats.timeline("read:/usr/lib"))
        assert "ms" in text


class TestTimelineAscii:
    def test_rows_and_axis(self, cb_stats):
        text = render_timeline_ascii(
            cb_stats.timeline("read:/usr/lib"), activity="read:/usr/lib")
        lines = text.splitlines()
        assert lines[0].startswith("timeline:")
        assert sum(1 for l in lines if "|" in l) == 3
        assert "ms" in lines[-1]

    def test_bars_present(self, cb_stats):
        text = render_timeline_ascii(cb_stats.timeline("read:/usr/lib"))
        assert "█" in text

    def test_empty(self):
        assert "(empty)" in render_timeline_ascii([])


class TestViewer:
    @pytest.fixture()
    def viewer(self, fig1_dir) -> DFGViewer:
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        return DFGViewer(DFG(log), stats, StatisticsColoring(stats))

    def test_all_formats(self, viewer):
        assert viewer.render("dot").startswith("digraph")
        assert viewer.render("svg").startswith("<svg")
        assert "NODES" in viewer.render("ascii")

    def test_unknown_format_rejected(self, viewer):
        with pytest.raises(RenderError):
            viewer.render("pdf")

    def test_save_with_suffix_inference(self, viewer, tmp_path):
        dot = viewer.save(tmp_path / "g.dot")
        svg = viewer.save(tmp_path / "g.svg")
        txt = viewer.save(tmp_path / "g.txt")
        assert dot.read_text().startswith("digraph")
        assert svg.read_text().startswith("<svg")
        assert "NODES" in txt.read_text()

    def test_save_unknown_suffix_rejected(self, viewer, tmp_path):
        with pytest.raises(RenderError):
            viewer.save(tmp_path / "g.pdf")

    def test_stats_inherited_from_styler(self, fig1_dir):
        """Paper's Fig. 6 passes stats only to the styler; the viewer
        must pick them up for node labels."""
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        viewer = DFGViewer(DFG(log), styler=StatisticsColoring(stats))
        assert "Load:" in viewer.render("dot")

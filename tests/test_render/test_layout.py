"""Layered layout: layering, cycle handling, determinism."""

import pytest
from hypothesis import given, strategies as st

from repro.core.activity import END_ACTIVITY, START_ACTIVITY, ActivityLog
from repro.core.dfg import DFG
from repro.core.render.layout import layout_dfg


def dfg_of(*traces):
    return DFG(ActivityLog(
        [(START_ACTIVITY, *t, END_ACTIVITY) for t in traces]))


class TestLayering:
    def test_chain_layers(self):
        layout = layout_dfg(dfg_of(("a", "b", "c")))
        boxes = layout.boxes
        assert boxes[START_ACTIVITY].layer == 0
        assert boxes["a"].layer == 1
        assert boxes["b"].layer == 2
        assert boxes["c"].layer == 3
        assert boxes[END_ACTIVITY].layer == 4

    def test_forward_edges_point_downward(self):
        layout = layout_dfg(dfg_of(("a", "b"), ("a", "c", "b")))
        for a1, a2 in layout.forward_edges:
            assert layout.boxes[a1].layer < layout.boxes[a2].layer

    def test_self_loops_excluded_from_layout_edges(self):
        layout = layout_dfg(dfg_of(("a", "a", "b")))
        assert layout.self_loops == ["a"]
        assert ("a", "a") not in layout.forward_edges

    def test_cycle_back_edge_detected(self):
        layout = layout_dfg(dfg_of(("a", "b", "a", "b")))
        # a→b→a is cyclic; exactly one direction must be a back edge.
        assert len(layout.back_edges) == 1

    def test_every_node_placed(self):
        dfg = dfg_of(("a", "b"), ("c",), ("d", "e", "f"))
        layout = layout_dfg(dfg)
        assert set(layout.boxes) == dfg.nodes()

    def test_empty_dfg(self):
        layout = layout_dfg(DFG())
        assert layout.boxes == {}
        assert layout.layers == []

    def test_deterministic(self):
        dfg = dfg_of(("a", "b", "c"), ("a", "c"), ("b", "b"))
        one = layout_dfg(dfg)
        two = layout_dfg(dfg)
        assert one.boxes == two.boxes
        assert one.layers == two.layers


class TestCoordinates:
    def test_no_overlapping_positions(self):
        dfg = dfg_of(("a", "b"), ("c", "b"), ("d", "e"))
        layout = layout_dfg(dfg)
        positions = [(b.x, b.y) for b in layout.boxes.values()]
        assert len(positions) == len(set(positions))

    def test_spacing_parameters(self):
        layout = layout_dfg(dfg_of(("a",)), x_spacing=5.0, y_spacing=7.0)
        ys = sorted({b.y for b in layout.boxes.values()})
        assert ys == [0.0, 7.0, 14.0]


traces_strategy = st.lists(
    st.lists(st.sampled_from("abcdef"), max_size=5).map(tuple),
    min_size=1, max_size=6)


@given(traces_strategy)
def test_layout_total_on_arbitrary_dfgs(traces):
    """Every node gets placed; forward edges all point downward."""
    dfg = DFG(ActivityLog(
        [(START_ACTIVITY, *t, END_ACTIVITY) for t in traces]))
    layout = layout_dfg(dfg)
    assert set(layout.boxes) == dfg.nodes()
    for a1, a2 in layout.forward_edges:
        assert layout.boxes[a1].layer < layout.boxes[a2].layer
    # forward + back + self partition the edge set
    all_edges = set(layout.forward_edges) | set(layout.back_edges) | {
        (a, a) for a in layout.self_loops}
    assert all_edges == set(dfg.edges())

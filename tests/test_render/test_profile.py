"""Concurrency-profile renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.render.profile import (
    render_profile_ascii,
    render_profile_svg,
)
from repro.core.statistics import IOStatistics


@pytest.fixture()
def rows(ls_sim_dir):
    log = EventLog.from_source(ls_sim_dir, cids={"b"})
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return IOStatistics(log).timeline("read:/usr/lib")


class TestSvgProfile:
    def test_wellformed(self, rows):
        text = render_profile_svg(rows, activity="read:/usr/lib")
        root = ET.fromstring(text)
        assert root.tag.endswith("svg")

    def test_peak_annotation_matches_mc(self, rows):
        # Fig. 5 geometry: peak concurrency 2.
        text = render_profile_svg(rows, activity="read:/usr/lib")
        assert "(peak 2)" in text

    def test_contains_step_path(self, rows):
        text = render_profile_svg(rows)
        assert '<path d="M ' in text

    def test_empty(self):
        assert "empty" in render_profile_svg([])


class TestAsciiProfile:
    def test_header_and_peak(self, rows):
        text = render_profile_ascii(rows, activity="read:/usr/lib")
        assert text.startswith("concurrency: read:/usr/lib (peak 2)")

    def test_sparkline_present(self, rows):
        text = render_profile_ascii(rows)
        assert "█" in text
        assert "ms" in text

    def test_empty(self):
        assert "(empty)" in render_profile_ascii([])

    def test_single_event(self):
        text = render_profile_ascii([("c1", 0, 100)])
        assert "(peak 1)" in text

"""Golden regression tests for the strace parser + ingestion engine.

Each simulate workload is generated with a fixed seed and reduced to a
compact fingerprint (:func:`repro.ingest.summary.cases_summary`):
record counts, merge statistics, DFG shape, top activities. The
fingerprints are checked into ``tests/test_golden/golden/`` — any
drift in the tokenizer, parser, unfinished/resumed merger, mapping or
DFG synthesis fails these tests with a field-level diff.

After an *intended* behavior change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden --update-golden

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.ingest.summary import trace_dir_summary

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Workload name → trace-dir builder. Seeds are pinned; the writer adds
#: unfinished/resumed splitting where the workload supports it so the
#: merge path is part of the fingerprint.
WORKLOADS = {}


def workload(fn):
    WORKLOADS[fn.__name__] = fn
    return fn


@workload
def ls(directory: Path) -> None:
    from repro.simulate.workloads.ls import generate_fig1_traces

    generate_fig1_traces(directory)


@workload
def ior(directory: Path) -> None:
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    result = simulate_ior(IORConfig(
        ranks=6, ranks_per_node=3, segments=2, cid="ior", seed=4242))
    write_trace_files(result.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS,
                      unfinished_probability=0.15, seed=7)


@workload
def checkpoint(directory: Path) -> None:
    from repro.simulate.strace_writer import write_trace_files
    from repro.simulate.workloads.checkpoint import (
        CheckpointConfig,
        simulate_checkpoint,
    )

    result = simulate_checkpoint(CheckpointConfig(
        ranks=4, ranks_per_node=2, steps=2, shard_bytes=2 << 20,
        transfer_bytes=1 << 20, seed=303))
    write_trace_files(result.recorders, directory,
                      unfinished_probability=0.15, seed=7)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_fingerprint_matches_golden(name, tmp_path, request):
    directory = tmp_path / name
    directory.mkdir()
    WORKLOADS[name](directory)
    summary = json.loads(json.dumps(trace_dir_summary(directory)))

    golden_path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(
            json.dumps(summary, indent=2, ensure_ascii=False,
                       sort_keys=True) + "\n",
            encoding="utf-8")
        pytest.skip(f"golden updated: {golden_path}")
    assert golden_path.exists(), \
        f"no golden for {name!r}; run with --update-golden to create it"
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    assert summary == golden, (
        f"{name} ingestion fingerprint drifted from "
        f"{golden_path.name}; if intended, rerun with --update-golden")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_fingerprint_stable_across_workers(name, tmp_path):
    """The fingerprint (hence the golden) is worker-count independent."""
    directory = tmp_path / name
    directory.mkdir()
    WORKLOADS[name](directory)
    assert trace_dir_summary(directory, workers=1) == \
        trace_dir_summary(directory, workers=2)

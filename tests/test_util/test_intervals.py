"""Interval sweep-line — the max-concurrency metric (Eq. 14-16)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util.intervals import (
    max_concurrency,
    max_concurrency_naive,
    merge_intervals,
    span,
    total_covered,
)


class TestMaxConcurrency:
    def test_empty(self):
        assert max_concurrency([]) == 0

    def test_single(self):
        assert max_concurrency([(0, 10)]) == 1

    def test_disjoint(self):
        assert max_concurrency([(0, 1), (2, 3), (4, 5)]) == 1

    def test_nested(self):
        assert max_concurrency([(0, 100), (10, 20), (30, 40)]) == 2

    def test_all_overlapping(self):
        assert max_concurrency([(0, 10), (1, 9), (2, 8)]) == 3

    def test_paper_fig5_stagger(self):
        """The Fig. 5 situation: staggered reads overlapping pairwise
        but never three ways → mc = 2."""
        intervals = [(0, 187), (150, 337), (300, 487)]
        assert max_concurrency(intervals) == 2

    def test_half_open_touching_does_not_overlap(self):
        # An event ending exactly when another starts: no concurrency.
        assert max_concurrency([(0, 10), (10, 20)]) == 1

    def test_zero_duration_counts_once(self):
        assert max_concurrency([(5, 5)]) == 1

    def test_zero_duration_inside_long_interval(self):
        assert max_concurrency([(0, 10), (5, 5)]) == 2

    def test_two_zero_durations_same_instant(self):
        assert max_concurrency([(5, 5), (5, 5)]) == 2

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            max_concurrency([(10, 5)])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            max_concurrency(np.zeros((3, 3)))

    def test_numpy_input(self):
        arr = np.array([[0.0, 10.0], [5.0, 15.0]])
        assert max_concurrency(arr) == 2


intervals_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 50)).map(
        lambda se: (float(se[0]), float(se[0] + se[1]))),
    max_size=40,
)


class TestSweepMatchesNaive:
    @given(intervals_strategy)
    @settings(max_examples=200)
    def test_sweep_equals_naive_reference(self, intervals):
        """The O(n log n) sweep must agree with the O(n²) reference on
        arbitrary inputs — the guide's rule for validated optimization."""
        assert max_concurrency(intervals) == \
            max_concurrency_naive(intervals)

    @given(intervals_strategy)
    def test_bounds(self, intervals):
        mc = max_concurrency(intervals)
        assert 0 <= mc <= len(intervals)
        if intervals:
            assert mc >= 1


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert merge_intervals([(5, 7), (0, 2), (1, 3)]) == \
            [(0.0, 3.0), (5.0, 7.0)]

    def test_touching_merge(self):
        assert merge_intervals([(0, 5), (5, 10)]) == [(0.0, 10.0)]

    def test_contained(self):
        assert merge_intervals([(0, 100), (10, 20)]) == [(0.0, 100.0)]

    @given(intervals_strategy)
    def test_merged_are_disjoint_and_sorted(self, intervals):
        merged = merge_intervals(intervals)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2

    @given(intervals_strategy)
    def test_total_covered_invariant(self, intervals):
        """Union length ≤ sum of lengths; equal iff no overlap."""
        covered = total_covered(intervals)
        total = sum(e - s for s, e in intervals)
        assert covered <= total + 1e-9


class TestSpan:
    def test_empty(self):
        assert span([]) is None

    def test_basic(self):
        assert span([(5, 7), (0, 2)]) == (0, 7)


class TestConcurrencyProfile:
    def test_docstring_example(self):
        from repro._util.intervals import concurrency_profile
        assert concurrency_profile([(0, 10), (5, 15)]) == [
            (0.0, 1), (5.0, 2), (10.0, 1), (15.0, 0)]

    def test_empty(self):
        from repro._util.intervals import concurrency_profile
        assert concurrency_profile([]) == []

    def test_ends_at_zero(self):
        from repro._util.intervals import concurrency_profile
        profile = concurrency_profile([(0, 3), (1, 2), (5, 9)])
        assert profile[-1][1] == 0

    def test_half_open_touching(self):
        from repro._util.intervals import concurrency_profile
        profile = concurrency_profile([(0, 5), (5, 10)])
        assert (5.0, 1) in profile
        assert all(count <= 1 for _, count in profile)

    @given(st.lists(
        st.tuples(st.integers(0, 100), st.integers(1, 30)).map(
            lambda se: (float(se[0]), float(se[0] + se[1]))),
        min_size=1, max_size=30))
    def test_profile_max_equals_sweep(self, intervals):
        """For positive-length intervals, the profile's max equals
        max_concurrency."""
        from repro._util.intervals import concurrency_profile
        profile = concurrency_profile(intervals)
        assert max(c for _, c in profile) == max_concurrency(intervals)

    @given(st.lists(
        st.tuples(st.integers(0, 100), st.integers(1, 30)).map(
            lambda se: (float(se[0]), float(se[0] + se[1]))),
        min_size=1, max_size=30))
    def test_profile_times_strictly_increasing(self, intervals):
        """Positive-length intervals never need spike entries, so
        times stay strictly increasing."""
        from repro._util.intervals import concurrency_profile
        profile = concurrency_profile(intervals)
        times = [t for t, _ in profile]
        assert times == sorted(set(times))

    def test_zero_length_spike_is_emitted(self):
        """Regression: a zero-length interval used to vanish from the
        profile entirely, so max(profile) != max_concurrency."""
        from repro._util.intervals import concurrency_profile
        assert concurrency_profile([(3, 3)]) == [(3.0, 1), (3.0, 0)]

    def test_zero_length_spike_inside_long_interval(self):
        from repro._util.intervals import concurrency_profile
        intervals = [(0, 10), (5, 5)]
        profile = concurrency_profile(intervals)
        assert (5.0, 2) in profile
        assert (5.0, 1) in profile  # settles back to the long interval

    def test_zero_length_at_boundary_of_touching_intervals(self):
        from repro._util.intervals import concurrency_profile
        profile = concurrency_profile([(0, 5), (5, 10), (5, 5)])
        assert max(count for _, count in profile) == \
            max_concurrency([(0, 5), (5, 10), (5, 5)])

    @given(st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 30)).map(
            lambda se: (float(se[0]), float(se[0] + se[1]))),
        min_size=1, max_size=30))
    def test_profile_max_equals_sweep_with_zero_lengths(self,
                                                       intervals):
        """The satellite regression property: with spike entries the
        profile's max equals max_concurrency on *all* inputs,
        zero-duration events included."""
        from repro._util.intervals import concurrency_profile
        profile = concurrency_profile(intervals)
        assert max(c for _, c in profile) == max_concurrency(intervals)
        assert profile[-1][1] == 0

"""Bag (multiset) algebra — the B(A_f*) container of activity-logs."""

import pytest
from hypothesis import given, strategies as st

from repro._util.multiset import Bag

elements = st.lists(st.sampled_from("abcde"), max_size=20)


class TestConstruction:
    def test_from_iterable_counts(self):
        bag = Bag(["x", "x", "y"])
        assert bag.multiplicity("x") == 2
        assert bag.multiplicity("y") == 1
        assert bag.multiplicity("z") == 0

    def test_paper_example(self):
        # Sec. IV: L_f(C) = {⟨a,a,b⟩², ⟨a,c⟩}
        bag = Bag([("a", "a", "b"), ("a", "a", "b"), ("a", "c")])
        assert bag.multiplicity(("a", "a", "b")) == 2
        assert bag.multiplicity(("a", "c")) == 1
        assert bag.total() == 3
        assert len(bag) == 2  # distinct

    def test_from_counts(self):
        bag = Bag.from_counts({"x": 3, "y": 0})
        assert bag.multiplicity("x") == 3
        assert "y" not in bag

    def test_from_counts_negative_rejected(self):
        with pytest.raises(ValueError):
            Bag.from_counts({"x": -1})

    def test_empty(self):
        bag = Bag()
        assert bag.total() == 0
        assert len(bag) == 0
        assert list(bag) == []


class TestAlgebra:
    def test_union_keeps_multiplicities(self):
        # L(Cx) = L(Ca) ⊎ L(Cb) in the paper sums multiplicities.
        combined = Bag(["t1"] * 3) + Bag(["t1"] * 2 + ["t2"])
        assert combined.multiplicity("t1") == 5
        assert combined.multiplicity("t2") == 1

    def test_difference_truncates_at_zero(self):
        result = Bag(["a"]) - Bag(["a", "a", "b"])
        assert result.total() == 0

    def test_scalar_multiplication(self):
        bag = Bag(["x", "y"]) * 3
        assert bag.multiplicity("x") == 3
        assert (0 * bag).total() == 0

    def test_scalar_multiplication_negative_rejected(self):
        with pytest.raises(ValueError):
            Bag(["x"]) * -1

    def test_subbag(self):
        assert Bag(["a"]).issubbag(Bag(["a", "a"]))
        assert not Bag(["a", "a"]).issubbag(Bag(["a"]))
        assert Bag().issubbag(Bag(["a"]))

    def test_iteration_with_multiplicity(self):
        assert sorted(Bag(["a", "b", "a"])) == ["a", "a", "b"]

    def test_equality_and_hash(self):
        assert Bag(["a", "b", "a"]) == Bag(["b", "a", "a"])
        assert hash(Bag(["a"])) == hash(Bag(["a"]))
        assert Bag(["a"]) != Bag(["a", "a"])


class TestProperties:
    @given(elements, elements)
    def test_union_commutative(self, xs, ys):
        assert Bag(xs) + Bag(ys) == Bag(ys) + Bag(xs)

    @given(elements, elements, elements)
    def test_union_associative(self, xs, ys, zs):
        a, b, c = Bag(xs), Bag(ys), Bag(zs)
        assert (a + b) + c == a + (b + c)

    @given(elements)
    def test_union_with_empty_is_identity(self, xs):
        assert Bag(xs) + Bag() == Bag(xs)

    @given(elements, elements)
    def test_total_is_additive(self, xs, ys):
        assert (Bag(xs) + Bag(ys)).total() == len(xs) + len(ys)

    @given(elements)
    def test_concatenation_equals_bag_sum(self, xs):
        half = len(xs) // 2
        assert Bag(xs[:half]) + Bag(xs[half:]) == Bag(xs)

    @given(elements, st.integers(min_value=0, max_value=5))
    def test_scalar_distributes(self, xs, k):
        assert Bag(xs) * k == Bag(xs * k)

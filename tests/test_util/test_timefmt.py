"""Wall-clock and duration parsing (strace -tt / -T formats)."""

import pytest
from hypothesis import given, strategies as st

from repro._util.timefmt import (
    MICROSECONDS_PER_DAY,
    format_duration,
    format_wallclock,
    micros_to_seconds,
    parse_duration,
    parse_wallclock,
)


class TestWallclock:
    def test_paper_fig2a_stamp(self):
        us = parse_wallclock("08:55:54.153994")
        assert us == ((8 * 3600 + 55 * 60 + 54) * 1_000_000 + 153994)

    def test_midnight(self):
        assert parse_wallclock("00:00:00.000000") == 0

    def test_last_microsecond_of_day(self):
        us = parse_wallclock("23:59:59.999999")
        assert us == MICROSECONDS_PER_DAY - 1

    @pytest.mark.parametrize("bad", [
        "8:55:54.153994",      # missing zero pad
        "08:55:54.1539",       # short microseconds
        "08:55:54",            # no microseconds at all
        "24:00:00.000000",     # hour out of range
        "08:61:54.153994",     # minutes out of range
        "banana",
        "",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_wallclock(bad)

    def test_format_roundtrip_paper_value(self):
        text = "08:55:54.153994"
        assert format_wallclock(parse_wallclock(text)) == text

    def test_format_wraps_past_midnight(self):
        us = parse_wallclock("23:59:59.999999")
        assert format_wallclock(us + 2) == "00:00:00.000001"

    def test_format_negative_rejected(self):
        with pytest.raises(ValueError):
            format_wallclock(-1)

    @given(st.integers(min_value=0, max_value=MICROSECONDS_PER_DAY - 1))
    def test_roundtrip_property(self, us):
        assert parse_wallclock(format_wallclock(us)) == us


class TestDuration:
    def test_paper_fig2a_duration(self):
        assert parse_duration("<0.000203>") == 203

    def test_multisecond(self):
        assert parse_duration("<12.345678>") == 12_345_678

    @pytest.mark.parametrize("bad", [
        "0.000203",        # no angle brackets
        "<0.0002>",        # five digits
        "<0,000203>",
        "<>",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_duration(bad)

    def test_format(self):
        assert format_duration(203) == "<0.000203>"
        assert format_duration(12_345_678) == "<12.345678>"

    def test_format_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-3)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_roundtrip_property(self, us):
        assert parse_duration(format_duration(us)) == us


def test_micros_to_seconds():
    assert micros_to_seconds(1_500_000) == pytest.approx(1.5)

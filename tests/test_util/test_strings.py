"""String interning pools (dictionary encoding for event columns)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util.strings import StringPool


class TestIntern:
    def test_codes_are_dense_first_seen_order(self):
        pool = StringPool()
        assert pool.intern("a") == 0
        assert pool.intern("b") == 1
        assert pool.intern("a") == 0
        assert len(pool) == 2

    def test_init_with_strings(self):
        pool = StringPool(["x", "y", "x"])
        assert len(pool) == 2
        assert pool.lookup("x") == 0

    def test_intern_all_vectorized(self):
        pool = StringPool()
        codes = pool.intern_all(["p", "q", "p", "r"])
        assert codes.dtype == np.int32
        assert codes.tolist() == [0, 1, 0, 2]

    def test_decode(self):
        pool = StringPool(["alpha", "beta"])
        assert pool.decode(1) == "beta"

    def test_decode_negative_rejected(self):
        with pytest.raises(IndexError):
            StringPool(["a"]).decode(-1)

    def test_decode_unknown_rejected(self):
        with pytest.raises(IndexError):
            StringPool(["a"]).decode(5)

    def test_decode_all(self):
        pool = StringPool(["a", "b", "c"])
        assert pool.decode_all(np.array([2, 0])) == ["c", "a"]

    def test_lookup_never_interns(self):
        pool = StringPool()
        assert pool.lookup("ghost") is None
        assert len(pool) == 0

    def test_contains_and_iter(self):
        pool = StringPool(["m", "n"])
        assert "m" in pool
        assert "z" not in pool
        assert list(pool) == ["m", "n"]

    def test_equality(self):
        assert StringPool(["a", "b"]) == StringPool(["a", "b"])
        assert StringPool(["a", "b"]) != StringPool(["b", "a"])


class TestPoolLevelFiltering:
    def test_codes_containing(self):
        pool = StringPool(["/usr/lib/libc.so", "/etc/passwd",
                           "/usr/lib/libm.so"])
        codes = pool.codes_containing("/usr/lib")
        assert codes.tolist() == [0, 2]

    def test_codes_containing_no_match(self):
        pool = StringPool(["/etc/passwd"])
        assert pool.codes_containing("/scratch").tolist() == []

    def test_codes_matching_predicate(self):
        pool = StringPool(["a.txt", "b.log", "c.txt"])
        codes = pool.codes_matching(lambda s: s.endswith(".txt"))
        assert codes.tolist() == [0, 2]

    @given(st.lists(st.text(min_size=0, max_size=8), max_size=30),
           st.text(min_size=1, max_size=3))
    def test_pool_filter_equals_direct_filter(self, strings, substring):
        """Pool-level filtering must agree with per-element filtering."""
        pool = StringPool()
        codes = [pool.intern(s) for s in strings]
        matching = set(pool.codes_containing(substring).tolist())
        for code, s in zip(codes, strings):
            assert (code in matching) == (substring in s)

    @given(st.lists(st.text(max_size=6), max_size=50))
    def test_roundtrip_property(self, strings):
        pool = StringPool()
        codes = [pool.intern(s) for s in strings]
        assert [pool.decode(c) for c in codes] == strings

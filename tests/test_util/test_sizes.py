"""Byte/rate formatting — the exact strings of the paper's node labels."""

import pytest
from hypothesis import given, strategies as st

from repro._util.sizes import format_bytes, format_rate, parse_size


class TestFormatBytes:
    def test_paper_fig3_usr_lib(self):
        # Fig. 3b: "Load:0.22 (14.98 KB)"
        assert format_bytes(14980) == "14.98 KB"

    def test_paper_fig8_gigabytes(self):
        # Fig. 8a: "(9.66 GB)"
        assert format_bytes(9.66e9) == "9.66 GB"

    def test_paper_fig8_megabytes(self):
        # Fig. 8a: "(825.82 MB)"
        assert format_bytes(825.82e6) == "825.82 MB"

    def test_sub_kilobyte_plain_bytes(self):
        # Fig. 3b write:/dev/pts moves 0.75 KB; below 1 KB we print B.
        assert format_bytes(750) == "750 B"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_fractional_bytes(self):
        assert format_bytes(0.5) == "0.50 B"

    def test_terabytes(self):
        assert format_bytes(2.5e12) == "2.50 TB"

    def test_exact_boundary_1kb(self):
        assert format_bytes(1000) == "1.00 KB"

    def test_decimals_parameter(self):
        assert format_bytes(1500, decimals=0) == "2 KB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatRate:
    def test_paper_fig3_rate(self):
        # Fig. 3b: "DR: 2x10.15 MB/s"
        assert format_rate(10.15e6) == "10.15 MB/s"

    def test_paper_fig8_high_rate_stays_mb(self):
        # Fig. 8a: "96x3175.20 MB/s" — never switches to GB/s.
        assert format_rate(3175.2e6) == "3175.20 MB/s"

    def test_slow_rate(self):
        assert format_rate(0.61e6) == "0.61 MB/s"

    def test_zero(self):
        assert format_rate(0) == "0.00 MB/s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_rate(-5.0)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("14.98 KB", 14980.0),
        ("9.66 GB", 9.66e9),
        ("512 B", 512.0),
        ("2.50 TB", 2.5e12),
        ("825.82 MB", 825.82e6),
    ])
    def test_round_values(self, text, expected):
        assert parse_size(text) == pytest.approx(expected)

    def test_case_insensitive(self):
        assert parse_size("1.5 kb") == pytest.approx(1500.0)

    @pytest.mark.parametrize("bad", ["", "KB", "1.5 XB", "abc", "1..2 KB"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    @given(st.floats(min_value=0, max_value=1e13,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_within_precision(self, value):
        """parse(format(x)) stays within the printed precision."""
        text = format_bytes(value)
        recovered = parse_size(text)
        # Two decimals of the chosen unit: error bound is half a unit
        # of the last printed digit.
        if value >= 1000:
            assert abs(recovered - value) / value < 0.01
        else:
            assert abs(recovered - value) <= 0.5

"""Metric primitives: declaration table, registry, restart bases."""

from __future__ import annotations

import pytest

from repro._util.errors import ReproError
from repro.telemetry import METRICS, DURATION_BUCKETS, MetricsRegistry
from repro.telemetry.metrics import metric_spec, rss_bytes


class TestDeclarationTable:
    def test_every_metric_declares_type_and_help(self):
        for name, spec in METRICS.items():
            assert spec[0] in {"counter", "gauge", "histogram"}, name
            assert spec[1].strip(), f"{name}: empty help string"

    def test_histograms_declare_buckets(self):
        for name, spec in METRICS.items():
            if spec[0] == "histogram":
                buckets = spec[2]
                assert buckets == tuple(sorted(buckets)), name
                assert len(buckets) == len(set(buckets)), name

    def test_counter_names_end_in_total(self):
        """The Prometheus convention the docs promise."""
        for name, spec in METRICS.items():
            if spec[0] == "counter":
                assert name.endswith("_total"), name

    def test_undeclared_name_is_an_error(self):
        with pytest.raises(ReproError, match="undeclared metric"):
            metric_spec("polls_toatl")  # the typo this guard exists for


class TestRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("polls_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        # Same (name, labels) -> same object.
        assert registry.counter("polls_total") is counter

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("polls_total")
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.inc(-1)
        counter.inc(5)
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.set_live_total(3)

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError, match="declared as a counter"):
            registry.gauge("polls_total")

    def test_label_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError, match="declares labels"):
            registry.counter("sink_failures_total")  # missing sink=
        with pytest.raises(ReproError, match="declares labels"):
            registry.counter("polls_total", sink="x")  # extra label

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("sink_failures_total", sink="a").inc(2)
        registry.counter("sink_failures_total", sink="b").inc(3)
        assert registry.counter("sink_failures_total",
                                sink="a").value == 2
        assert registry.counter_sum("sink_failures_total") == 5

    def test_counter_sum_of_untouched_family_is_zero(self):
        assert MetricsRegistry().counter_sum("sink_failures_total") == 0

    def test_families_follow_declared_order(self):
        registry = MetricsRegistry()
        registry.gauge("files_tracked").set(2)
        registry.counter("polls_total").inc()
        registry.histogram("poll_seconds").observe(0.1)
        names = [name for name, _ in registry.families()]
        declared = [n for n in METRICS if n in set(names)]
        assert names == declared


class TestRestartBases:
    def test_counter_reports_base_plus_live(self):
        counter = MetricsRegistry().counter("polls_total")
        counter.restore(42)
        counter.inc(8)
        assert counter.value == 50

    def test_set_live_total_keeps_the_base(self):
        counter = MetricsRegistry().counter("sink_failures_total",
                                            sink="s")
        counter.restore(10)
        counter.set_live_total(3)
        counter.set_live_total(4)
        assert counter.value == 14

    def test_histogram_merges_base_counts(self):
        histogram = MetricsRegistry().histogram("poll_seconds")
        histogram.observe(0.002)
        counts = list(histogram.counts)
        total, count = histogram.sum, histogram.count
        revived = MetricsRegistry().histogram("poll_seconds")
        revived.restore(counts, total, count)
        revived.observe(0.002)
        merged = revived.merged_counts()
        assert sum(merged) == 2
        assert merged[1] == 2  # 0.002 falls in the 0.0025 bucket
        assert revived.merged_count == 2
        assert revived.merged_sum == pytest.approx(0.004)

    def test_histogram_grid_change_folds_into_inf(self):
        """A sidecar from a version with a different bucket grid must
        not misattribute latencies — everything folds into +Inf."""
        revived = MetricsRegistry().histogram("poll_seconds")
        revived.restore([5, 7], 1.25, 12)  # two-bucket legacy grid
        merged = revived.merged_counts()
        assert merged[-1] == 12
        assert sum(merged[:-1]) == 0
        assert revived.merged_sum == 1.25


class TestHistogramBuckets:
    def test_observe_uses_upper_bound_semantics(self):
        histogram = MetricsRegistry().histogram("poll_seconds")
        histogram.observe(DURATION_BUCKETS[0])  # exactly on a bound
        assert histogram.counts[0] == 1  # le is inclusive

    def test_overflow_lands_in_inf(self):
        histogram = MetricsRegistry().histogram("poll_seconds")
        histogram.observe(10 * DURATION_BUCKETS[-1])
        assert histogram.counts[-1] == 1


def test_rss_bytes_reports_a_plausible_resident_set():
    value = rss_bytes()
    assert value > 1 << 20  # a Python process is at least a megabyte

"""Fleet exposition: merged registries, ``job`` labels, worst-of
health — and the MetricsServer duck-typing that serves them."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from types import SimpleNamespace

from repro.telemetry import Telemetry
from repro.telemetry.exposition import (MetricsServer,
                                        render_prometheus_fleet)
from repro.telemetry.health import aggregate_health


def _telemetry(**counts) -> Telemetry:
    telemetry = Telemetry()
    for name, value in counts.items():
        telemetry.count(name, value)
    return telemetry


class TestRenderPrometheusFleet:
    def test_one_header_per_family_series_job_labelled(self):
        app1 = _telemetry(polls_total=3)
        app2 = _telemetry(polls_total=5)
        text = render_prometheus_fleet(
            [("app1", app1.registry), ("app2", app2.registry)])
        # The 0.0.4 text format forbids repeated HELP/TYPE headers:
        # one header, then every job's series.
        assert text.count("# TYPE st_inspector_polls_total") == 1
        assert 'st_inspector_polls_total{job="app1"} 3' in text
        assert 'st_inspector_polls_total{job="app2"} 5' in text

    def test_job_label_merges_sorted_with_metric_labels(self):
        telemetry = Telemetry()
        telemetry.count("sink_failures_total", 2, sink="HttpSink#0")
        text = render_prometheus_fleet([("app1", telemetry.registry)])
        # Merged label set is sorted: job before sink.
        assert ('st_inspector_sink_failures_total'
                '{job="app1",sink="HttpSink#0"} 2') in text

    def test_empty_fleet_renders_empty(self):
        assert render_prometheus_fleet([]) == "\n"


class TestAggregateHealth:
    def test_worst_job_wins(self):
        combined = aggregate_health({
            "a": {"status": "ok"},
            "b": {"status": "degraded"},
            "c": {"status": "ok"},
        })
        assert combined["status"] == "degraded"
        assert set(combined["jobs"]) == {"a", "b", "c"}

    def test_single_failing_job_fails_the_fleet(self):
        combined = aggregate_health({
            "a": {"status": "ok"},
            "b": {"status": "failing"},
        })
        assert combined["status"] == "failing"

    def test_empty_fleet_is_vacuously_ok(self):
        assert aggregate_health({})["status"] == "ok"


class _Provider:
    """The duck type MetricsServer accepts in place of a Telemetry."""

    def __init__(self, status: str) -> None:
        self._status = status

    def render_metrics(self) -> str:
        return 'st_inspector_polls_total{job="app1"} 3\n'

    def health_verdict(self) -> dict:
        return {"status": self._status, "jobs": {}}


class TestMetricsServerFleetProvider:
    def _get(self, server: MetricsServer, path: str):
        with urllib.request.urlopen(
                f"http://{server.host}:{server.port}{path}",
                timeout=5) as response:
            return response.status, response.read().decode("utf-8")

    def test_metrics_come_from_render_metrics(self):
        server = MetricsServer(_Provider("ok"), 0)
        try:
            status, body = self._get(server, "/metrics")
            assert status == 200
            assert 'st_inspector_polls_total{job="app1"} 3' in body
        finally:
            server.close()

    def test_healthz_comes_from_health_verdict(self):
        server = MetricsServer(_Provider("ok"), 0)
        try:
            status, body = self._get(server, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            server.close()

    def test_failing_fleet_healthz_is_503(self):
        server = MetricsServer(_Provider("failing"), 0)
        try:
            try:
                self._get(server, "/healthz")
                raise AssertionError("expected a 503")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
                verdict = json.loads(exc.read().decode("utf-8"))
                assert verdict["status"] == "failing"
        finally:
            server.close()

    def test_fleet_telemetry_end_to_end(self):
        """FleetTelemetry over real jobs, scraped over HTTP."""
        from repro.fleet.telemetry import FleetTelemetry

        jobs = [
            SimpleNamespace(
                name=name,
                engine=SimpleNamespace(
                    telemetry=_telemetry(polls_total=count)))
            for name, count in (("app1", 1), ("app2", 4))
        ]
        server = MetricsServer(FleetTelemetry(jobs), 0)
        try:
            status, body = self._get(server, "/metrics")
            assert status == 200
            assert 'st_inspector_polls_total{job="app1"} 1' in body
            assert 'st_inspector_polls_total{job="app2"} 4' in body
            status, body = self._get(server, "/healthz")
            assert status == 200
            verdict = json.loads(body)
            assert verdict["status"] == "ok"
            assert set(verdict["jobs"]) == {"app1", "app2"}
        finally:
            server.close()

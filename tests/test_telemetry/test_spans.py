"""Span lifecycle, the Telemetry facade, and the null implementation."""

from __future__ import annotations

import time

import pytest

from repro._util.errors import ReproError
from repro.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        null = NULL_TELEMETRY
        assert null.enabled is False
        assert null.last_span is None
        null.begin_poll()
        null.count("polls_total")
        null.count_total("sink_failures_total", 3, sink="s")
        null.gauge_set("files_tracked", 2)
        null.observe("poll_seconds", 0.1)
        null.record_overrun(1, 0.5)
        null.record_cadence_ok()
        assert null.end_poll() is None

    def test_phase_context_is_shared_and_reusable(self):
        """The disabled hot path allocates nothing per phase."""
        first = NULL_TELEMETRY.phase("scan")
        second = NULL_TELEMETRY.phase("tail")
        assert first is second
        with first:
            pass

    def test_null_mirrors_the_real_interface(self):
        """Every public recording method of Telemetry exists on the
        null twin — a call site can never need a None check."""
        real = {name for name in dir(Telemetry())
                if not name.startswith("_")}
        null = {name for name in dir(NULL_TELEMETRY)
                if not name.startswith("_")}
        # State/persistence accessors only exist when enabled; the
        # call sites guard those behind `telemetry.enabled`.
        enabled_only = {"registry", "snapshot", "to_state",
                        "restore_state", "update_rss"}
        assert real - null == enabled_only


class TestSpanLifecycle:
    def test_begin_end_produces_a_span(self):
        telemetry = Telemetry(unix_clock=lambda: 123.0)
        telemetry.begin_poll()
        with telemetry.phase("scan"):
            pass
        span = telemetry.end_poll()
        assert span.started_unix == 123.0
        assert span.wall_s >= 0
        assert "scan" in span.phases
        assert telemetry.last_span is span
        # One poll_seconds observation per span.
        assert telemetry.registry.histogram(
            "poll_seconds").count == 1

    def test_double_begin_is_an_error(self):
        telemetry = Telemetry()
        telemetry.begin_poll()
        with pytest.raises(ReproError, match="span open"):
            telemetry.begin_poll()

    def test_end_without_begin_is_an_error(self):
        with pytest.raises(ReproError, match="without begin_poll"):
            Telemetry().end_poll()

    def test_end_poll_copies_the_poll_result(self):
        class Result:
            n_poll = 7
            n_sealed = 11
            n_files = 3

        telemetry = Telemetry()
        telemetry.begin_poll()
        span = telemetry.end_poll(Result())
        assert (span.n_poll, span.n_sealed, span.n_files) == (7, 11, 3)

    def test_phases_reenter_and_accumulate(self):
        telemetry = Telemetry()
        telemetry.begin_poll()
        for _ in range(3):
            with telemetry.phase("tail"):
                time.sleep(0.001)
        span = telemetry.end_poll()
        timing = span.phases["tail"]
        assert timing.entries == 3
        assert timing.wall_s >= 0.003
        # The cumulative histogram saw every entry, not the sum.
        histogram = telemetry.registry.histogram("phase_seconds",
                                                 phase="tail")
        assert histogram.count == 3

    def test_phase_outside_a_span_still_feeds_the_histograms(self):
        """The render phase sits outside the span on purpose."""
        telemetry = Telemetry()
        with telemetry.phase("render"):
            pass
        assert telemetry.registry.histogram(
            "phase_seconds", phase="render").count == 1
        assert telemetry.last_span is None

    def test_top_phases_sorted_by_wall(self):
        telemetry = Telemetry()
        span = telemetry.begin_poll()
        span.phase("a").wall_s = 0.5
        span.phase("b").wall_s = 2.0
        span.phase("c").wall_s = 1.0
        assert [p.name for p in span.top_phases(2)] == ["b", "c"]


class TestCadence:
    def test_overrun_streak_counts_and_resets(self):
        telemetry = Telemetry()
        telemetry.record_overrun(1, 0.5)
        telemetry.record_overrun(2, 0.5)
        assert telemetry.overrun_streak == 2
        assert telemetry.registry.counter(
            "poll_overruns_total").value == 2
        assert telemetry.registry.gauge(
            "poll_overrun_streak").value == 2
        telemetry.record_cadence_ok()
        assert telemetry.overrun_streak == 0
        assert telemetry.registry.gauge(
            "poll_overrun_streak").value == 0
        # The lifetime total survives the reset.
        assert telemetry.registry.counter(
            "poll_overruns_total").value == 2


class TestSnapshotRoundTrip:
    def build(self) -> Telemetry:
        telemetry = Telemetry(unix_clock=lambda: 1000.0)
        telemetry.begin_poll()
        with telemetry.phase("seal"):
            pass
        telemetry.count("polls_total")
        telemetry.count("events_sealed_total", 5)
        telemetry.count("sink_failures_total", 2, sink="HttpSink#0")
        telemetry.gauge_set("files_tracked", 4)
        telemetry.end_poll()
        return telemetry

    def test_snapshot_is_json_able_and_complete(self):
        import json

        snapshot = self.build().snapshot()
        json.dumps(snapshot)  # no exotic types
        counters = {e["name"]: e["value"]
                    for e in snapshot["counters"]}
        assert counters["polls_total"] == 1
        assert counters["events_sealed_total"] == 5
        assert counters["sink_failures_total"] == 2
        gauges = {e["name"]: e["value"] for e in snapshot["gauges"]}
        assert gauges["files_tracked"] == 4
        assert snapshot["last_poll"]["phases"][0]["name"] == "seal"

    def test_restore_adopts_counters_and_histograms_as_bases(self):
        state = self.build().to_state()
        revived = Telemetry()
        revived.restore_state(state)
        registry = revived.registry
        assert registry.counter("polls_total").value == 1
        assert registry.counter("sink_failures_total",
                                sink="HttpSink#0").value == 2
        assert registry.histogram("poll_seconds").merged_count == 1
        # Gauges are point-in-time: not restored.
        assert registry.gauge("files_tracked").value == 0
        # And the new life keeps counting on top of the base.
        revived.count("polls_total")
        assert registry.counter("polls_total").value == 2

    def test_restore_skips_retired_metric_names(self):
        state = self.build().to_state()
        state["snapshot"]["counters"].append(
            {"name": "metric_retired_in_v6_total", "labels": {},
             "value": 9})
        state["snapshot"]["histograms"].append(
            {"name": "gone_seconds", "labels": {},
             "counts": [1], "sum": 0.5, "count": 1})
        revived = Telemetry()
        revived.restore_state(state)  # no ReproError
        assert revived.registry.counter("polls_total").value == 1

    def test_restore_tolerates_empty_state(self):
        telemetry = Telemetry()
        telemetry.restore_state(None)
        telemetry.restore_state({})
        telemetry.restore_state({"snapshot": None})

"""The health verdict: snapshot in, ok/degraded/failing out."""

from __future__ import annotations

from repro.telemetry import (
    THRESHOLDS,
    Telemetry,
    health_from_snapshot,
    render_health,
)


def snapshot_with(**gauges: float) -> dict:
    return {"version": 1, "unix_time": 1000.0,
            "counters": [], "histograms": [],
            "gauges": [{"name": name, "labels": {}, "value": value}
                       for name, value in gauges.items()],
            "last_poll": None, "overrun_streak": 0}


class TestVerdict:
    def test_quiet_snapshot_is_ok(self):
        verdict = health_from_snapshot(snapshot_with())
        assert verdict["status"] == "ok"
        assert all(check["status"] == "ok"
                   for check in verdict["checks"].values())

    def test_one_overrun_degrades(self):
        verdict = health_from_snapshot(
            snapshot_with(poll_overrun_streak=1))
        assert verdict["status"] == "degraded"
        assert verdict["checks"]["poll_overruns"]["status"] == "warn"

    def test_overrun_streak_fails(self):
        verdict = health_from_snapshot(
            snapshot_with(poll_overrun_streak=3))
        assert verdict["status"] == "failing"

    def test_sink_streak_fails(self):
        verdict = health_from_snapshot(
            snapshot_with(sink_failure_streak=5))
        assert verdict["status"] == "failing"
        assert verdict["checks"]["sinks"]["status"] == "fail"

    def test_sealing_age_grades_by_trace_seconds(self):
        warn_at, fail_at = THRESHOLDS["sealing"]
        assert health_from_snapshot(snapshot_with(
            watermark_age_seconds=warn_at - 1))["status"] == "ok"
        assert health_from_snapshot(snapshot_with(
            watermark_age_seconds=warn_at))["status"] == "degraded"
        assert health_from_snapshot(snapshot_with(
            watermark_age_seconds=fail_at))["status"] == "failing"

    def test_worst_check_wins(self):
        verdict = health_from_snapshot(snapshot_with(
            poll_overrun_streak=1,          # warn
            sink_failure_streak=4))         # fail
        assert verdict["status"] == "failing"

    def test_live_snapshot_round_trips(self):
        telemetry = Telemetry()
        telemetry.begin_poll()
        telemetry.count("polls_total")
        telemetry.end_poll()
        verdict = health_from_snapshot(telemetry.snapshot())
        assert verdict["status"] == "ok"
        assert verdict["last_poll"]["n_poll"] == 1


class TestRenderHealth:
    def test_renders_status_and_every_check(self):
        text = render_health(health_from_snapshot(
            snapshot_with(poll_overrun_streak=1)))
        assert text.startswith("status: degraded")
        for check in ("poll_overruns", "sinks", "sealing"):
            assert check in text
        assert "warn>=1" in text

    def test_renders_the_last_poll_when_present(self):
        telemetry = Telemetry()
        telemetry.begin_poll()
        with telemetry.phase("seal"):
            pass
        telemetry.end_poll()
        text = render_health(health_from_snapshot(telemetry.snapshot()))
        assert "last poll     #1" in text
        assert "seal" in text

"""Prometheus text rendering, the HTTP endpoint, the JSONL log."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro._util.errors import ReproError
from repro.telemetry import (
    MetricsServer,
    Telemetry,
    append_snapshot,
    render_prometheus,
)


def build_telemetry() -> Telemetry:
    telemetry = Telemetry(unix_clock=lambda: 1000.0)
    telemetry.begin_poll()
    telemetry.count("polls_total")
    telemetry.count("events_sealed_total", 7)
    telemetry.count("sink_failures_total", 2, sink="HttpSink#0")
    telemetry.gauge_set("files_tracked", 3)
    telemetry.observe("poll_seconds", 0.002)
    telemetry.end_poll()
    return telemetry


class TestRenderPrometheus:
    def test_help_type_and_prefix(self):
        text = render_prometheus(build_telemetry().registry)
        assert "# HELP st_inspector_polls_total " in text
        assert "# TYPE st_inspector_polls_total counter" in text
        assert "st_inspector_polls_total 1" in text
        assert "st_inspector_files_tracked 3" in text

    def test_labels_rendered(self):
        text = render_prometheus(build_telemetry().registry)
        assert ('st_inspector_sink_failures_total'
                '{sink="HttpSink#0"} 2') in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(build_telemetry().registry)
        lines = [line for line in text.splitlines()
                 if line.startswith("st_inspector_poll_seconds_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert lines[-1].startswith(
            'st_inspector_poll_seconds_bucket{le="+Inf"}')
        # end_poll observed the (tiny) span wall too: 2 total.
        assert counts[-1] == 2
        assert "st_inspector_poll_seconds_count 2" in text

    def test_label_values_are_escaped(self):
        telemetry = Telemetry()
        telemetry.count("sink_failures_total", sink='a"b\\c\nd')
        text = render_prometheus(telemetry.registry)
        assert r'{sink="a\"b\\c\nd"}' in text

    def test_untouched_registry_renders_empty(self):
        assert render_prometheus(Telemetry().registry) == "\n"


class TestMetricsServer:
    @pytest.fixture
    def server(self):
        telemetry = build_telemetry()
        server = MetricsServer(telemetry, 0)  # ephemeral port
        yield server, telemetry
        server.close()

    def _get(self, server: MetricsServer, path: str):
        with urllib.request.urlopen(
                f"http://{server.host}:{server.port}{path}",
                timeout=5) as response:
            return response.status, response.read(), response.headers

    def test_metrics_endpoint(self, server):
        server, _ = server
        status, body, headers = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4")
        assert b"st_inspector_polls_total 1" in body

    def test_healthz_ok(self, server):
        server, _ = server
        status, body, headers = self._get(server, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        verdict = json.loads(body)
        assert verdict["status"] == "ok"
        assert set(verdict["checks"]) == \
            {"poll_overruns", "sinks", "sealing"}

    def test_healthz_failing_is_503(self, server):
        server, telemetry = server
        for n in range(3):
            telemetry.record_overrun(n + 1, 0.5)
        with pytest.raises(urllib.error.HTTPError) as caught:
            self._get(server, "/healthz")
        assert caught.value.code == 503
        assert json.loads(caught.value.read())["status"] == "failing"

    def test_unknown_path_is_404(self, server):
        server, _ = server
        with pytest.raises(urllib.error.HTTPError) as caught:
            self._get(server, "/nope")
        assert caught.value.code == 404

    def test_port_conflict_raises_repro_error(self, server):
        server, telemetry = server
        with pytest.raises(ReproError, match="cannot bind"):
            MetricsServer(telemetry, server.port)


class TestAppendSnapshot:
    def test_appends_one_json_line_per_call(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        telemetry = build_telemetry()
        append_snapshot(path, telemetry.snapshot())
        telemetry.count("polls_total")
        append_snapshot(path, telemetry.snapshot())
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert len(rows) == 2
        totals = [
            next(e["value"] for e in row["counters"]
                 if e["name"] == "polls_total")
            for row in rows]
        assert totals == [1, 2]

"""The catalog's acceptance properties, under randomized workloads.

Two laws, hypothesis-driven:

1. **Record/restore is the identity on statistics.** For any trace
   directory (a random non-empty subset of the Fig. 1 + IOR files,
   under a random activity mapping), the statistics restored from the
   catalog equal batch ``compute_statistics`` on the same directory —
   every :class:`~repro.core.statistics.ActivityStats` field compared
   with ``==``, floats bit-for-bit. Same for the DFG and the
   fingerprint (recorded twice → identical).

2. **``runs diff`` is ``DFGDiff`` of the live graphs.** Diffing two
   cataloged runs renders the exact report that diffing the in-memory
   DFGs (with their statistics) would — the catalog adds persistence,
   not interpretation.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import RunCatalog, RunRecord, diff_runs
from repro.core.dfg import DFG
from repro.core.diff import DFGDiff
from repro.core.statistics import IOStatistics


def mapped_log(directory, mapping: str = "topdirs", levels: int = 2):
    """Batch-load a trace directory exactly as ``report`` would."""
    from repro.fleet.job import mapping_from_name
    from repro.sources import open_source

    log = open_source(str(directory)).event_log()
    mapping_obj = mapping_from_name(mapping, levels)
    log.apply_mapping_fn(mapping_obj)
    return log, mapping_obj

#: A workload: which of the 6+4 trace files to include (non-empty),
#: and the mapping to view them under.
subset = st.sets(st.integers(min_value=0, max_value=9), min_size=1)
mappings = st.sampled_from([("topdirs", 1), ("topdirs", 2),
                            ("topdirs", 3), ("call", 2), ("path", 2)])


def _materialize(scratch: Path, indices, ls_file_bytes,
                 ior_file_bytes) -> Path:
    names = sorted(ls_file_bytes) + sorted(ior_file_bytes)
    pool = {**ls_file_bytes, **ior_file_bytes}
    directory = scratch / "traces"
    directory.mkdir(parents=True)
    for index in sorted(indices):
        name = names[index % len(names)]
        (directory / name).write_bytes(pool[name])
    return directory


class TestRecordRestoreIdentity:
    @given(indices=subset, mapping=mappings)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_restored_stats_equal_batch_compute(self, ls_file_bytes,
                                                ior_file_bytes,
                                                indices, mapping):
        name, levels = mapping
        with tempfile.TemporaryDirectory() as scratch:
            directory = _materialize(Path(scratch), indices,
                                     ls_file_bytes, ior_file_bytes)
            log, mapping_obj = mapped_log(directory, name, levels)
            catalog = RunCatalog(Path(scratch) / "cat.db")
            record = RunRecord.from_log(
                log, name="run", source=str(directory),
                mapping=mapping_obj.name, levels=levels)
            run_id = catalog.record_run(record)
            again = catalog.record_run(record)

            batch_stats = IOStatistics(log)
            restored = catalog.statistics(run_id)
            assert restored.total_duration_us == \
                batch_stats.total_duration_us
            assert sorted(restored.activities()) == \
                sorted(batch_stats.activities())
            for activity in batch_stats.activities():
                assert restored[activity] == batch_stats[activity]
            assert catalog.dfg(run_id) == DFG(log)
            # Content-determinism: same content, same fingerprint.
            assert catalog.get_run(run_id).fingerprint == \
                catalog.get_run(again).fingerprint


class TestDiffEquivalence:
    @given(green=subset, red=subset)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_runs_diff_equals_dfgdiff_of_live_graphs(self,
                                                     ls_file_bytes,
                                                     ior_file_bytes,
                                                     green, red):
        with tempfile.TemporaryDirectory() as scratch:
            root = Path(scratch)
            catalog = RunCatalog(root / "cat.db")
            logs = {}
            for label, indices in (("green", green), ("red", red)):
                directory = _materialize(root / label, indices,
                                         ls_file_bytes,
                                         ior_file_bytes)
                log, mapping_obj = mapped_log(directory)
                logs[label] = log
                catalog.record_run(RunRecord.from_log(
                    log, name=label, source=str(directory),
                    mapping=mapping_obj.name, levels=2))
            _, _, cataloged = diff_runs(catalog, "green", "red")
            live = DFGDiff(DFG(logs["green"]), DFG(logs["red"]),
                           IOStatistics(logs["green"]),
                           IOStatistics(logs["red"]))
            assert cataloged.report(top=10) == live.report(top=10)

"""RunCatalog round-trips: what goes in comes back bit-identical.

The catalog's contract is that a restored run is indistinguishable
from the in-memory objects the recorder held: the DFG compares equal
(same edges, counts, node frequencies), every
:class:`~repro.core.statistics.ActivityStats` field — floats included
— compares equal (SQLite ``REAL`` is an IEEE double, so no rounding),
and the fired-alert history returns in firing order. Plus the version
discipline: a foreign or newer file is rejected with a
:class:`CatalogError`, never silently re-initialized.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.alerts.model import Alert
from repro.catalog import (
    CATALOG_VERSION,
    CatalogError,
    RunCatalog,
    RunRecord,
    run_fingerprint,
)
from repro.core.dfg import DFG
from repro.core.statistics import IOStatistics

ALERTS = (
    Alert(rule="edges", kind="new_edge", subject="a -> b",
          message="new edge a -> b", value=3.0, n_poll=2,
          total_events=40),
    Alert(rule="busy", kind="stat_threshold", subject="read:/usr/lib",
          message="event_count 18 > 5", value=18.0, threshold=5.0,
          n_poll=3, total_events=75),
)


def _record(fig1_batch, *, name="fig1", alerts=()) -> RunRecord:
    log, mapping = fig1_batch
    return RunRecord.from_log(log, name=name, source="traces/fig1",
                              mapping=mapping.name, levels=2,
                              alerts=alerts)


class TestRoundTrip:
    def test_dfg_restores_equal(self, tmp_path, fig1_batch):
        log, _ = fig1_batch
        catalog = RunCatalog(tmp_path / "cat.db")
        run_id = catalog.record_run(_record(fig1_batch))
        restored = catalog.dfg(run_id)
        original = DFG(log)
        assert restored == original
        assert restored.edges() == original.edges()
        for activity in original.nodes():
            assert restored.node_frequency(activity) == \
                original.node_frequency(activity)

    def test_statistics_restore_bit_identical(self, tmp_path,
                                              fig1_batch):
        log, _ = fig1_batch
        catalog = RunCatalog(tmp_path / "cat.db")
        run_id = catalog.record_run(_record(fig1_batch))
        restored = catalog.statistics(run_id)
        batch = IOStatistics(log)
        assert restored.total_duration_us == batch.total_duration_us
        assert sorted(restored.activities()) == \
            sorted(batch.activities())
        for activity in batch.activities():
            # ActivityStats is a frozen dataclass: == compares every
            # field, floats bit-for-bit.
            assert restored[activity] == batch[activity], activity

    def test_alerts_round_trip_in_firing_order(self, tmp_path,
                                               fig1_batch):
        catalog = RunCatalog(tmp_path / "cat.db")
        run_id = catalog.record_run(
            _record(fig1_batch, alerts=ALERTS))
        assert catalog.alerts(run_id) == list(ALERTS)

    def test_metadata_row(self, tmp_path, fig1_batch):
        log, mapping = fig1_batch
        catalog = RunCatalog(tmp_path / "cat.db")
        record = _record(fig1_batch)
        run_id = catalog.record_run(record, clock=lambda: 1234.5)
        row = catalog.get_run(run_id)
        assert row.name == "fig1"
        assert row.source == "traces/fig1"
        assert row.mapping == mapping.name == "call+top2dirs"
        assert row.levels == 2
        assert row.recorded_at == 1234.5
        assert row.n_events == log.n_events
        assert row.n_cases == log.n_cases
        assert row.fingerprint == record.fingerprint == \
            run_fingerprint(record.dfg, record.stats,
                            n_events=log.n_events, n_cases=log.n_cases)
        assert row.n_nodes == record.dfg.n_nodes
        assert row.n_edges == record.dfg.n_edges

    def test_fingerprint_is_content_deterministic(self, tmp_path,
                                                  fig1_batch):
        """Two records over identical content — different names,
        different entry layers — fingerprint identically."""
        catalog = RunCatalog(tmp_path / "cat.db")
        first = catalog.record_run(_record(fig1_batch, name="a"))
        second = catalog.record_run(_record(fig1_batch, name="b"))
        assert catalog.get_run(first).fingerprint == \
            catalog.get_run(second).fingerprint


class TestLookup:
    def _three_runs(self, tmp_path, fig1_batch) -> RunCatalog:
        catalog = RunCatalog(tmp_path / "cat.db")
        for name in ("app1", "app1", "app2"):
            catalog.record_run(_record(fig1_batch, name=name))
        return catalog

    def test_list_runs_filters(self, tmp_path, fig1_batch):
        catalog = self._three_runs(tmp_path, fig1_batch)
        assert [row.id for row in catalog.list_runs()] == [1, 2, 3]
        assert [row.id for row in catalog.list_runs(app="app1")] == \
            [1, 2]
        assert [row.id for row in
                catalog.list_runs(source="fig1")] == [1, 2, 3]
        assert catalog.list_runs(source="nowhere") == []
        assert [row.id for row in
                catalog.list_runs(mapping="call+top2dirs")] == [1, 2, 3]
        # limit keeps the newest N, presented oldest-first.
        assert [row.id for row in catalog.list_runs(limit=2)] == [2, 3]

    def test_last_runs_newest_first(self, tmp_path, fig1_batch):
        catalog = self._three_runs(tmp_path, fig1_batch)
        assert [row.id for row in catalog.last_runs(2)] == [3, 2]
        assert [row.id for row in
                catalog.last_runs(5, app="app1")] == [2, 1]

    def test_resolve_by_id_and_by_name(self, tmp_path, fig1_batch):
        catalog = self._three_runs(tmp_path, fig1_batch)
        assert catalog.resolve("3").id == 3
        # A name resolves to that app's *newest* run.
        assert catalog.resolve("app1").id == 2

    def test_unknown_references_name_the_catalog(self, tmp_path,
                                                 fig1_batch):
        catalog = self._three_runs(tmp_path, fig1_batch)
        with pytest.raises(CatalogError, match="no run 99"):
            catalog.get_run(99)
        with pytest.raises(CatalogError,
                           match="no run named 'nope'.*app1, app2"):
            catalog.resolve("nope")
        with pytest.raises(CatalogError, match="no run 99"):
            catalog.dfg(99)

    def test_metric_rows_validates_the_metric(self, tmp_path,
                                              fig1_batch):
        catalog = self._three_runs(tmp_path, fig1_batch)
        with pytest.raises(CatalogError, match="unknown metric"):
            list(catalog.metric_rows("velocity"))
        rows = list(catalog.metric_rows("event_count", app="app2"))
        assert len(rows) == 1
        row, values = rows[0]
        assert row.name == "app2"
        assert values["read:/usr/lib"] == 18


class TestVersioning:
    def test_missing_file_rejected_without_create(self, tmp_path):
        with pytest.raises(CatalogError, match="no such run catalog"):
            RunCatalog(tmp_path / "nope.db", create=False)
        assert not (tmp_path / "nope.db").exists()

    def test_newer_version_rejected(self, tmp_path, fig1_batch):
        path = tmp_path / "cat.db"
        catalog = RunCatalog(path)
        catalog.record_run(_record(fig1_batch))
        with sqlite3.connect(path) as conn:
            conn.execute(f"PRAGMA user_version = {CATALOG_VERSION + 7}")
        with pytest.raises(CatalogError,
                           match="unsupported catalog version"):
            RunCatalog(path, create=False)

    def test_foreign_sqlite_database_rejected(self, tmp_path):
        path = tmp_path / "other.db"
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE visitors (id INTEGER)")
        with pytest.raises(CatalogError, match="not a run catalog"):
            RunCatalog(path)  # even the create=True writer refuses

    def test_non_sqlite_file_rejected(self, tmp_path):
        path = tmp_path / "not.db"
        path.write_text("just some text, definitely not SQLite\n" * 20)
        with pytest.raises(CatalogError, match="not a run catalog"):
            RunCatalog(path, create=False)

    def test_empty_file_needs_create(self, tmp_path, fig1_batch):
        path = tmp_path / "empty.db"
        path.touch()
        with pytest.raises(CatalogError, match="empty"):
            RunCatalog(path, create=False)
        # The writer stance initializes it in place.
        RunCatalog(path).record_run(_record(fig1_batch))
        assert len(RunCatalog(path, create=False).list_runs()) == 1


class TestConcurrency:
    def test_busy_writer_retries_then_succeeds(self, tmp_path,
                                               fig1_batch,
                                               monkeypatch):
        """A sibling job holding the write lock stalls, not breaks,
        a commit: the retry loop lands it once the lock clears."""
        path = tmp_path / "cat.db"
        catalog = RunCatalog(path)
        blocker = sqlite3.connect(path)
        blocker.execute("BEGIN IMMEDIATE")
        naps: list[float] = []

        def release(delay: float) -> None:
            naps.append(delay)
            if len(naps) == 2:
                blocker.rollback()
                blocker.close()

        from repro.catalog import schema as schema_module
        monkeypatch.setattr(schema_module, "_BUSY_TIMEOUT_S", 0.05)
        import functools
        original = schema_module.write_transaction
        monkeypatch.setattr(
            schema_module, "write_transaction",
            functools.partial(original, sleep=release))
        # store.py imported the name directly; patch its binding too.
        from repro.catalog import store as store_module
        monkeypatch.setattr(
            store_module, "write_transaction",
            functools.partial(original, sleep=release))
        run_id = catalog.record_run(_record(fig1_batch))
        assert catalog.get_run(run_id).name == "fig1"
        assert len(naps) >= 2  # it really did wait the lock out

    def test_two_interleaved_writers_both_land(self, tmp_path,
                                               fig1_batch):
        """The multi-writer contract fleet jobs rely on: two catalog
        handles over one file, alternating commits, no loss."""
        path = tmp_path / "cat.db"
        first, second = RunCatalog(path), RunCatalog(path)
        ids = [first.record_run(_record(fig1_batch, name="a")),
               second.record_run(_record(fig1_batch, name="b")),
               first.record_run(_record(fig1_batch, name="a"))]
        assert ids == [1, 2, 3]
        assert [row.name for row in first.list_runs()] == \
            ["a", "b", "a"]

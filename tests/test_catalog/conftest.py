"""Fixtures for the run-catalog suite.

Same devices as the live/fleet suites — the Fig. 1 workload rendered
to per-file bytes, small IOR runs — plus a helper that loads a trace
directory through the batch pipeline exactly as ``st-inspector
report`` would (ingest, then apply the paper's call+top-dirs mapping),
so catalog round-trips are always compared against the batch truth.
"""

from __future__ import annotations

import tempfile

import pytest


@pytest.fixture(scope="session")
def ior_file_bytes() -> dict[str, bytes]:
    """A small IOR run as per-file bytes (distinct DFG from Fig. 1)."""
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    result = simulate_ior(IORConfig(
        ranks=4, ranks_per_node=2, segments=2, cid="ior", seed=77))
    with tempfile.TemporaryDirectory() as scratch:
        paths = write_trace_files(result.recorders, scratch,
                                  trace_calls=EXPERIMENT_A_CALLS)
        return {path.name: path.read_bytes() for path in paths}


def mapped_log(directory, mapping: str = "topdirs", levels: int = 2):
    """Batch-load a trace directory, mapping applied — the same path
    ``st-inspector report`` takes. Returns ``(log, mapping_obj)``."""
    from repro.fleet.job import mapping_from_name
    from repro.sources import open_source

    log = open_source(str(directory)).event_log()
    mapping_obj = mapping_from_name(mapping, levels)
    log.apply_mapping_fn(mapping_obj)
    return log, mapping_obj


@pytest.fixture
def fig1_batch(fig1_dir):
    """The Fig. 1 directory batch-loaded under the paper's mapping."""
    return mapped_log(fig1_dir)

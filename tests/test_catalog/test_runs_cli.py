"""The query layer: ``st-inspector runs list/show/diff/trend``, the
``--catalog`` flags of convert/report/watch, and the shared ``--json``
serializer (satellite: ``report --json`` / ``diff --json``)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.statistics import METRIC_NAMES


@pytest.fixture
def fig1_cataloged(tmp_path, fig1_dir, capsys):
    """Two batch runs of the Fig. 1 dir recorded via ``report``."""
    catalog = tmp_path / "cat.db"
    for name in ("app1", "app2"):
        assert main(["report", str(fig1_dir), "--catalog", str(catalog),
                     "--run-name", name]) == 0
    capsys.readouterr()
    return catalog


def _json_out(capsys):
    return json.loads(capsys.readouterr().out)


class TestBatchRecording:
    def test_report_catalog_announces_the_run(self, tmp_path,
                                              fig1_dir, capsys):
        catalog = tmp_path / "cat.db"
        assert main(["report", str(fig1_dir),
                     "--catalog", str(catalog)]) == 0
        out = capsys.readouterr().out
        assert "cataloged run 1" in out
        # Default run name: the source directory's basename.
        assert f"({Path(fig1_dir).name!r})" in out

    def test_convert_catalog_records_the_packed_store(self, tmp_path,
                                                      fig1_dir,
                                                      capsys):
        catalog = tmp_path / "cat.db"
        out_elog = tmp_path / "fig1.elog"
        assert main(["convert", str(fig1_dir), str(out_elog),
                     "--catalog", str(catalog),
                     "--run-name", "packed"]) == 0
        assert main(["runs", "list", str(catalog), "--json"]) == 0
        capsys.readouterr()  # drop convert output, keep parsing simple
        assert main(["runs", "list", str(catalog), "--json"]) == 0
        (row,) = _json_out(capsys)
        assert row["name"] == "packed"
        assert row["n_events"] > 0

    def test_report_json_is_machine_readable(self, fig1_dir, capsys):
        assert main(["report", str(fig1_dir), "--json"]) == 0
        payload = _json_out(capsys)
        assert set(payload) == {"total_duration_us", "n_activities",
                                "activities"}
        by_name = {row["activity"]: row
                   for row in payload["activities"]}
        assert by_name["read:/usr/lib"]["event_count"] == 18
        for metric in METRIC_NAMES:
            assert metric in by_name["read:/usr/lib"]

    def test_diff_json_is_machine_readable(self, fig1_dir, capsys):
        assert main(["diff", str(fig1_dir), "--green", "a",
                     "--json"]) == 0
        payload = _json_out(capsys)
        for key in ("jaccard_nodes", "jaccard_edges",
                    "total_count_delta", "added_edges",
                    "vanished_edges", "edge_deltas",
                    "activity_deltas"):
            assert key in payload, key


class TestRunsList:
    def test_table_and_json_agree(self, fig1_cataloged, capsys):
        assert main(["runs", "list", str(fig1_cataloged)]) == 0
        table = capsys.readouterr().out
        assert "app1" in table and "app2" in table
        assert main(["runs", "list", str(fig1_cataloged),
                     "--json"]) == 0
        rows = _json_out(capsys)
        assert [row["name"] for row in rows] == ["app1", "app2"]
        assert rows[0]["mapping"] == "call+top2dirs"

    def test_filters(self, fig1_cataloged, capsys):
        assert main(["runs", "list", str(fig1_cataloged),
                     "--app", "app2", "--json"]) == 0
        (row,) = _json_out(capsys)
        assert row["name"] == "app2"
        assert main(["runs", "list", str(fig1_cataloged),
                     "--app", "ghost"]) == 0
        assert "no matching runs" in capsys.readouterr().out

    def test_missing_catalog_exits_2(self, tmp_path, capsys):
        assert main(["runs", "list", str(tmp_path / "nope.db")]) == 2
        assert "no such run catalog" in capsys.readouterr().err

    def test_newer_version_exits_2(self, fig1_cataloged, capsys):
        import sqlite3

        with sqlite3.connect(fig1_cataloged) as conn:
            conn.execute("PRAGMA user_version = 99")
        assert main(["runs", "list", str(fig1_cataloged)]) == 2
        assert "unsupported catalog version" in \
            capsys.readouterr().err


class TestRunsShow:
    def test_show_renders_metadata_and_statistics(self,
                                                  fig1_cataloged,
                                                  capsys):
        assert main(["runs", "show", str(fig1_cataloged), "app1"]) == 0
        out = capsys.readouterr().out
        assert "app1" in out
        assert "call+top2dirs" in out
        assert "read:/usr/lib" in out

    def test_show_json_shape(self, fig1_cataloged, capsys):
        assert main(["runs", "show", str(fig1_cataloged), "1",
                     "--json"]) == 0
        payload = _json_out(capsys)
        assert set(payload) == {"run", "statistics", "alerts"}
        assert payload["run"]["id"] == 1
        assert payload["alerts"] == []
        activities = {row["activity"]
                      for row in payload["statistics"]["activities"]}
        assert "read:/usr/lib" in activities

    def test_unknown_run_exits_2(self, fig1_cataloged, capsys):
        assert main(["runs", "show", str(fig1_cataloged),
                     "ghost"]) == 2
        assert "no run named 'ghost'" in capsys.readouterr().err


class TestRunsDiff:
    def test_diff_report_equals_dfgdiff(self, fig1_cataloged, capsys):
        from repro.catalog import RunCatalog
        from repro.core.diff import DFGDiff

        assert main(["runs", "diff", str(fig1_cataloged),
                     "app1", "app2"]) == 0
        out = capsys.readouterr().out
        assert "green: run 1 ('app1'), red: run 2 ('app2')" in out
        catalog = RunCatalog(fig1_cataloged, create=False)
        expected = DFGDiff(catalog.dfg(1), catalog.dfg(2),
                           catalog.statistics(1),
                           catalog.statistics(2)).report(top=10)
        assert out.endswith(expected)

    def test_diff_json_shares_the_batch_serializer(self,
                                                   fig1_cataloged,
                                                   capsys):
        assert main(["runs", "diff", str(fig1_cataloged), "1", "2",
                     "--json"]) == 0
        payload = _json_out(capsys)
        assert set(payload) == {"green", "red", "diff"}
        # Identical runs: perfect overlap, no deltas.
        assert payload["diff"]["jaccard_edges"] == 1.0
        assert payload["diff"]["added_edges"] == []
        assert payload["diff"]["total_count_delta"] == 0


class TestRunsTrend:
    def test_trend_table(self, fig1_cataloged, capsys):
        assert main(["runs", "trend", str(fig1_cataloged),
                     "--metric", "event_count"]) == 0
        out = capsys.readouterr().out
        assert "trend of event_count across 2 runs" in out
        assert "read:/usr/lib" in out

    def test_trend_json_orders_by_latest_value(self, fig1_cataloged,
                                               capsys):
        assert main(["runs", "trend", str(fig1_cataloged),
                     "--metric", "event_count", "--json"]) == 0
        payload = _json_out(capsys)
        assert payload["metric"] == "event_count"
        assert [run["id"] for run in payload["runs"]] == [1, 2]
        values = [row["values"][-1]
                  for row in payload["activities"]]
        assert values == sorted(values, reverse=True)
        assert payload["activities"][0]["values"] == [18, 18]

    def test_activity_filter(self, fig1_cataloged, capsys):
        assert main(["runs", "trend", str(fig1_cataloged),
                     "--metric", "total_bytes",
                     "--activity", "read:/usr/lib", "--json"]) == 0
        payload = _json_out(capsys)
        assert len(payload["activities"]) == 1
        assert main(["runs", "trend", str(fig1_cataloged),
                     "--activity", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_metric_choices_are_the_paper_vector(self):
        """argparse rejects a non-Sec.-IV-B metric at parse time."""
        with pytest.raises(SystemExit):
            main(["runs", "trend", "cat.db", "--metric", "velocity"])


class TestWatchRecording:
    def test_watch_once_catalogs_the_run(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(["simulate-ls", str(trace_dir)]) == 0
        catalog = tmp_path / "cat.db"
        assert main(["watch", str(trace_dir), "--once",
                     "--interval", "0",
                     "--catalog", str(catalog)]) == 0
        capsys.readouterr()
        assert main(["runs", "list", str(catalog), "--json"]) == 0
        (row,) = _json_out(capsys)
        assert row["name"] == "traces"  # the --run-name default
        assert row["n_polls"] == 1
        assert row["n_events"] == 75
        assert row["wall_span_s"] is not None

"""Catalog crash-consistency: a kill at *any* instant of a commit
leaves no trace of the half-written run.

Same device as the checkpoint suite
(``tests/test_live/test_crash_consistency.py``): each insert step of
:meth:`RunCatalog.record_run` — the run row, the edge list, the node
frequencies, the statistics vector, the alert history, and the final
``COMMIT`` itself — is made to raise, aborting the write exactly where
a SIGKILL would. The invariant: ``runs list`` never shows the aborted
run, every restore of the *previous* runs stays intact, and the very
next (unpatched) commit succeeds on the same file.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.catalog import CatalogError, RunCatalog, RunRecord
from repro.catalog import schema as schema_module
from repro.catalog import store as store_module
from repro.core.dfg import DFG
from repro.core.statistics import IOStatistics

#: Which step of the transactional insert the simulated kill hits.
KILL_POINTS = ("_insert_run", "_insert_edges", "_insert_nodes",
               "_insert_stats", "_insert_alerts", "commit")


def _kill_at(monkeypatch, point: str) -> None:
    """Abort record_run at one step (inside the open transaction)."""
    if point == "commit":
        real_connect = schema_module.connect

        class DyingCommit:
            def __init__(self, conn):
                self._conn = conn

            def commit(self):
                raise sqlite3.OperationalError(
                    "disk I/O error (simulated kill at commit)")

            def __getattr__(self, name):
                return getattr(self._conn, name)

        monkeypatch.setattr(
            schema_module, "connect",
            lambda path, *, create=False:
                DyingCommit(real_connect(path, create=create)))
    else:
        def dying_step(self, conn, *args, **kwargs):
            raise sqlite3.OperationalError(
                f"disk I/O error (simulated kill in {point})")

        monkeypatch.setattr(RunCatalog, point, dying_step)


def _record(fig1_batch, name="fig1") -> RunRecord:
    log, mapping = fig1_batch
    return RunRecord.from_log(log, name=name, source="traces",
                              mapping=mapping.name, levels=2)


class TestKillDuringCommit:
    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_aborted_run_is_never_visible(self, tmp_path, fig1_batch,
                                          monkeypatch, point):
        path = tmp_path / "cat.db"
        catalog = RunCatalog(path)
        survivor_id = catalog.record_run(_record(fig1_batch, "before"))
        survivor_dfg = catalog.dfg(survivor_id)
        with monkeypatch.context() as patched:
            _kill_at(patched, point)
            with pytest.raises(CatalogError):
                catalog.record_run(_record(fig1_batch, "torn"))
        # Invariant: the torn run never happened. A fresh reader of
        # the same file (a sibling fleet job, a `runs list`) sees
        # exactly the pre-crash catalog.
        fresh = RunCatalog(path, create=False)
        rows = fresh.list_runs()
        assert [row.name for row in rows] == ["before"]
        assert fresh.dfg(survivor_id) == survivor_dfg
        # No orphaned child rows under any id, either.
        with sqlite3.connect(path) as conn:
            for table in ("edges", "nodes", "stats", "alerts"):
                orphans = conn.execute(
                    f"SELECT COUNT(*) FROM {table} WHERE run_id NOT "
                    f"IN (SELECT id FROM runs)").fetchone()[0]
                assert orphans == 0, table

    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_next_commit_recovers(self, tmp_path, fig1_batch,
                                  monkeypatch, point):
        """After an aborted commit, the same catalog object (or a
        revived one) lands the run cleanly — no lingering lock, no
        poisoned connection state."""
        path = tmp_path / "cat.db"
        catalog = RunCatalog(path)
        with monkeypatch.context() as patched:
            _kill_at(patched, point)
            with pytest.raises(CatalogError):
                catalog.record_run(_record(fig1_batch, "torn"))
        run_id = catalog.record_run(_record(fig1_batch, "after"))
        assert [row.name for row in catalog.list_runs()] == ["after"]
        batch = IOStatistics(fig1_batch[0])
        restored = catalog.statistics(run_id)
        for activity in batch.activities():
            assert restored[activity] == batch[activity]

    def test_reader_mid_transaction_sees_old_state(self, tmp_path,
                                                   fig1_batch):
        """WAL isolation, spelled out: a reader that opens while a
        writer's transaction is in flight keeps seeing the previous
        committed state."""
        path = tmp_path / "cat.db"
        catalog = RunCatalog(path)
        catalog.record_run(_record(fig1_batch, "committed"))
        record = _record(fig1_batch, "in-flight")
        writer = schema_module.connect(path, create=True)
        writer.execute("BEGIN IMMEDIATE")
        try:
            run_id = catalog._insert_run(writer, record, 1.0)
            catalog._insert_edges(writer, run_id, record)
            # Mid-transaction: a fresh reader sees only the commit.
            reader = RunCatalog(path, create=False)
            assert [row.name for row in reader.list_runs()] == \
                ["committed"]
        finally:
            writer.rollback()
            writer.close()
        assert [row.name for row in catalog.list_runs()] == \
            ["committed"]


class TestRestoredObjectsStayConsistent:
    def test_restore_after_crash_matches_batch(self, tmp_path,
                                               fig1_batch,
                                               monkeypatch):
        """A crash between two good commits does not bend either
        neighbor: both restore bit-identical to the batch compute."""
        log, _ = fig1_batch
        path = tmp_path / "cat.db"
        catalog = RunCatalog(path)
        first = catalog.record_run(_record(fig1_batch, "one"))
        with monkeypatch.context() as patched:
            _kill_at(patched, "_insert_stats")
            with pytest.raises(CatalogError):
                catalog.record_run(_record(fig1_batch, "torn"))
        second = catalog.record_run(_record(fig1_batch, "two"))
        batch_stats, batch_dfg = IOStatistics(log), DFG(log)
        for run_id in (first, second):
            assert catalog.dfg(run_id) == batch_dfg
            restored = catalog.statistics(run_id)
            for activity in batch_stats.activities():
                assert restored[activity] == batch_stats[activity]

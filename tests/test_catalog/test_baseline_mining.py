"""``catalog:`` mined baselines drive the alert engine exactly like a
hand-picked baseline would.

The acceptance criterion: a rules file whose ``baseline`` is a
``catalog:`` URI fires the *same alert identities* as the equivalent
hand-picked directory baseline — including across a kill/restart of
the watcher that recorded the baseline run. Union aggregation widens
the baseline to everything seen over the last K runs; a mapping
mismatch between the cataloged run and the live watch is a
configuration error, not a silent wrong answer.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

import pytest

from repro._util.errors import ReproError, SourceError
from repro.alerts import AlertEngine
from repro.catalog import CatalogError, CatalogSource, RunCatalog, RunRecord
from repro.core.statistics import IOStatistics
from repro.live.engine import LiveIngest
from repro.sources import open_source

RULES = """
baseline = "{baseline}"

[[rule]]
name = "new-relations"
type = "new_edge"
absent_from_baseline = true
"""


def _mapped_log(directory, mapping="topdirs", levels=2):
    from repro.fleet.job import mapping_from_name

    log = open_source(str(directory)).event_log()
    mapping_obj = mapping_from_name(mapping, levels)
    log.apply_mapping_fn(mapping_obj)
    return log, mapping_obj


def _record_dir(catalog: RunCatalog, directory, *, name,
                mapping="topdirs", levels=2) -> int:
    log, mapping_obj = _mapped_log(directory, mapping, levels)
    return catalog.record_run(RunRecord.from_log(
        log, name=name, source=str(directory),
        mapping=mapping_obj.name, levels=levels))


def _fired_identities(trace_dir: Path, rules_path: Path) -> Counter:
    """One poll over a fully-written dir; the fired identity multiset."""
    alerts = AlertEngine.from_rules_file(rules_path)
    engine = LiveIngest(trace_dir, alerts=alerts)
    fired = alerts.evaluate(engine, engine.poll())
    return Counter(alert.identity for alert in fired)


@pytest.fixture
def dirs(tmp_path, ls_file_bytes, ior_file_bytes, write_files):
    """baseline dir (ls only) and grown dir (ls + IOR: new edges)."""
    baseline_dir = tmp_path / "baseline"
    grown_dir = tmp_path / "grown"
    baseline_dir.mkdir(), grown_dir.mkdir()
    write_files(baseline_dir, ls_file_bytes)
    write_files(grown_dir, {**ls_file_bytes, **ior_file_bytes})
    return baseline_dir, grown_dir


class TestMinedBaselineEquivalence:
    def test_same_identities_as_hand_picked_baseline(self, tmp_path,
                                                     dirs):
        baseline_dir, grown_dir = dirs
        catalog_path = tmp_path / "cat.db"
        _record_dir(RunCatalog(catalog_path), baseline_dir,
                    name="app1")

        mined_rules = tmp_path / "mined.toml"
        mined_rules.write_text(RULES.format(
            baseline=f"catalog:{catalog_path.as_posix()}?app=app1"))
        picked_rules = tmp_path / "picked.toml"
        picked_rules.write_text(RULES.format(
            baseline=baseline_dir.as_posix()))

        mined = _fired_identities(grown_dir, mined_rules)
        picked = _fired_identities(grown_dir, picked_rules)
        assert mined == picked
        assert mined  # the IOR files really did add edges

    def test_last_means_newest_matching_run(self, tmp_path, dirs):
        """With the *grown* dir recorded as the newest app1 run,
        agg=last mines it and nothing is new any more."""
        baseline_dir, grown_dir = dirs
        catalog_path = tmp_path / "cat.db"
        catalog = RunCatalog(catalog_path)
        _record_dir(catalog, baseline_dir, name="app1")
        _record_dir(catalog, grown_dir, name="app1")
        rules = tmp_path / "rules.toml"
        rules.write_text(RULES.format(
            baseline=f"catalog:{catalog_path.as_posix()}?app=app1"))
        assert _fired_identities(grown_dir, rules) == Counter()

    def test_app_filter_selects_the_right_history(self, tmp_path,
                                                  dirs):
        """A newer run under a *different* name must not shadow the
        selected app's baseline."""
        baseline_dir, grown_dir = dirs
        catalog_path = tmp_path / "cat.db"
        catalog = RunCatalog(catalog_path)
        _record_dir(catalog, baseline_dir, name="app1")
        _record_dir(catalog, grown_dir, name="other")
        rules = tmp_path / "rules.toml"
        rules.write_text(RULES.format(
            baseline=f"catalog:{catalog_path.as_posix()}?app=app1"))
        assert _fired_identities(grown_dir, rules)


class TestUnionAggregation:
    def test_union_covers_every_mined_run(self, tmp_path,
                                          ls_file_bytes,
                                          ior_file_bytes,
                                          write_files):
        """Two disjoint runs (ls-only, ior-only) recorded separately:
        agg=last over the older one fires on the combined dir, the
        union over both suppresses everything."""
        ls_dir, ior_dir = tmp_path / "ls", tmp_path / "ior"
        combined = tmp_path / "combined"
        for directory in (ls_dir, ior_dir, combined):
            directory.mkdir()
        write_files(ls_dir, ls_file_bytes)
        write_files(ior_dir, ior_file_bytes)
        write_files(combined, {**ls_file_bytes, **ior_file_bytes})
        catalog_path = tmp_path / "cat.db"
        catalog = RunCatalog(catalog_path)
        _record_dir(catalog, ls_dir, name="app1")
        _record_dir(catalog, ior_dir, name="app1")

        last_rules = tmp_path / "last.toml"
        last_rules.write_text(RULES.format(
            baseline=f"catalog:{catalog_path.as_posix()}"
                     f"?app=app1&agg=last"))
        union_rules = tmp_path / "union.toml"
        union_rules.write_text(RULES.format(
            baseline=f"catalog:{catalog_path.as_posix()}"
                     f"?app=app1&agg=union&k=2"))
        # last = the ior-only run: the ls edges all look new.
        assert _fired_identities(combined, last_rules)
        # union of both runs covers the combined edge set exactly.
        assert _fired_identities(combined, union_rules) == Counter()

    def test_union_takes_per_edge_maxima(self, tmp_path, dirs):
        baseline_dir, grown_dir = dirs
        catalog_path = tmp_path / "cat.db"
        catalog = RunCatalog(catalog_path)
        small = _record_dir(catalog, baseline_dir, name="app1")
        big = _record_dir(catalog, grown_dir, name="app1")
        source = open_source(
            f"catalog:{catalog_path.as_posix()}?app=app1&agg=union")
        from repro.fleet.job import mapping_from_name

        dfg, stats = source.baseline_pair(mapping_from_name("topdirs"))
        small_dfg = catalog.dfg(small)
        big_dfg = catalog.dfg(big)
        for edge in set(small_dfg.edges()) | set(big_dfg.edges()):
            assert dfg.edges()[edge] == max(
                small_dfg.edges().get(edge, 0),
                big_dfg.edges().get(edge, 0)), edge
        assert isinstance(stats, IOStatistics)
        assert len(stats)


class TestConfigurationErrors:
    def test_missing_run_fails_at_open(self, tmp_path, dirs):
        baseline_dir, _ = dirs
        catalog_path = tmp_path / "cat.db"
        _record_dir(RunCatalog(catalog_path), baseline_dir,
                    name="app1")
        with pytest.raises(CatalogError, match="no run named 'ghost'"):
            open_source(f"catalog:{catalog_path.as_posix()}?app=ghost")

    def test_missing_catalog_fails_at_open(self, tmp_path):
        with pytest.raises(CatalogError, match="no such run catalog"):
            open_source(f"catalog:{tmp_path / 'nope.db'}")

    def test_unknown_option_rejected(self, tmp_path, dirs):
        baseline_dir, _ = dirs
        catalog_path = tmp_path / "cat.db"
        _record_dir(RunCatalog(catalog_path), baseline_dir, name="a")
        with pytest.raises(SourceError, match="unknown option"):
            open_source(f"catalog:{catalog_path.as_posix()}?frob=1")
        with pytest.raises(SourceError, match="k must be an integer"):
            open_source(f"catalog:{catalog_path.as_posix()}?"
                        f"agg=union&k=three")
        with pytest.raises(SourceError, match="unknown agg"):
            CatalogSource(str(catalog_path), agg="median")
        with pytest.raises(SourceError, match="only applies"):
            CatalogSource(str(catalog_path), agg="last", k=3)

    def test_mapping_mismatch_names_both_mappings(self, tmp_path,
                                                  dirs):
        """A baseline recorded under ``call`` cannot feed a watch
        mapping with ``call+top2dirs``."""
        baseline_dir, grown_dir = dirs
        catalog_path = tmp_path / "cat.db"
        _record_dir(RunCatalog(catalog_path), baseline_dir,
                    name="app1", mapping="call")
        rules = tmp_path / "rules.toml"
        rules.write_text(RULES.format(
            baseline=f"catalog:{catalog_path.as_posix()}?app=app1"))
        alerts = AlertEngine.from_rules_file(rules)
        engine = LiveIngest(grown_dir, alerts=alerts)
        with pytest.raises(ReproError,
                           match="'call'.*'call\\+top2dirs'"):
            alerts.evaluate(engine, engine.poll())

    def test_catalog_source_cannot_be_ingested(self, tmp_path, dirs):
        baseline_dir, _ = dirs
        catalog_path = tmp_path / "cat.db"
        _record_dir(RunCatalog(catalog_path), baseline_dir, name="a")
        source = open_source(f"catalog:{catalog_path.as_posix()}")
        with pytest.raises(SourceError, match="per-run aggregates"):
            source.event_log()


class TestWriterKillRestart:
    def test_restarted_watcher_records_batch_identical_run(
            self, tmp_path, ls_file_bytes, ior_file_bytes,
            write_files):
        """Kill/restart of the recording watcher: life 1 sees half the
        files, dies after its finalize; life 2 restores the checkpoint,
        absorbs the rest, and the run *it* catalogs equals the batch
        compute over the final directory — then serves as a mined
        baseline with the same identities a hand-picked one yields."""
        from repro.cli import main

        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        names = sorted(ls_file_bytes)
        write_files(trace_dir,
                    {n: ls_file_bytes[n] for n in names[:3]})
        catalog_path = tmp_path / "cat.db"
        checkpoint = tmp_path / "ckpt.json"
        argv = ["watch", str(trace_dir), "--once", "--interval", "0",
                "--checkpoint", str(checkpoint),
                "--catalog", str(catalog_path), "--run-name", "app1"]
        assert main(argv) == 0  # life 1, then the simulated kill
        write_files(trace_dir,
                    {n: ls_file_bytes[n] for n in names[3:]})
        assert main(argv) == 0  # life 2 restores and finishes

        catalog = RunCatalog(catalog_path, create=False)
        rows = catalog.list_runs(app="app1")
        assert len(rows) == 2
        final = rows[-1]
        assert final.n_polls == 2  # poll count spans both lives
        log, _ = _mapped_log(trace_dir)
        batch = IOStatistics(log)
        restored = catalog.statistics(final.id)
        assert restored.total_duration_us == batch.total_duration_us
        for activity in batch.activities():
            assert restored[activity] == batch[activity]

        # The restart-built run now serves as a mined baseline with
        # hand-picked-identical behavior on a further-grown dir.
        grown = tmp_path / "grown"
        grown.mkdir()
        write_files(grown, {**ls_file_bytes, **ior_file_bytes})
        mined_rules = tmp_path / "mined.toml"
        mined_rules.write_text(RULES.format(
            baseline=f"catalog:{catalog_path.as_posix()}?app=app1"))
        picked_rules = tmp_path / "picked.toml"
        picked_rules.write_text(RULES.format(
            baseline=trace_dir.as_posix()))
        mined = _fired_identities(grown, mined_rules)
        assert mined == _fired_identities(grown, picked_rules)
        assert mined

"""Shared fixtures: the paper's example traces and small IOR runs.

The ``fig2a``/``fig2b`` text constants are transcriptions of the
paper's Fig. 2 trace listings; fixtures write them as properly named
trace files (Fig. 1 convention). Simulator-based fixtures use reduced
rank counts to keep the suite fast; the full 96-rank runs live in
``benchmarks/``.

The per-file-bytes fixtures (``ls_file_bytes``/``ior_file_bytes``)
are the raw material of every live/alerting/fleet replay: a workload
rendered once per session, revealed into fresh directories in
increments by the suites (see ``tests/strategies.py``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.strategies import write_all as write_all_files


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="also run tests marked @pytest.mark.slow / .bench "
             "(excluded from tier-1 to keep it fast)")
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden ingestion summaries under "
             "tests/test_golden/golden/ instead of comparing")


def pytest_collection_modifyitems(config: pytest.Config,
                                  items: list[pytest.Item]) -> None:
    if config.getoption("--run-slow"):
        return
    skip = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords or "bench" in item.keywords:
            item.add_marker(skip)

FIG2A_TEXT = """\
9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = 832 <0.000203>
9054  08:55:54.156640 read(3</usr/lib/x86_64-linux-gnu/libc.so.6>, ..., 832) = 832 <0.000079>
9054  08:55:54.159294 read(3</usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4>, ..., 832) = 832 <0.000087>
9054  08:55:54.162874 read(3</proc/filesystems>, ..., 1024) = 478 <0.000052>
9054  08:55:54.163049 read(3</proc/filesystems>, "", 1024) = 0 <0.000040>
9054  08:55:54.163560 read(3</etc/locale.alias>, ..., 4096) = 2996 <0.000041>
9054  08:55:54.163679 read(3</etc/locale.alias>, "", 4096) = 0 <0.000044>
9054  08:55:54.176260 write(1</dev/pts/7>, ..., 50) = 50 <0.000111>
"""

FIG2B_TEXT = """\
9173  08:56:04.731999 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = 832 <0.000187>
9173  08:56:04.734569 read(3</usr/lib/x86_64-linux-gnu/libc.so.6>, ..., 832) = 832 <0.000075>
9173  08:56:04.737108 read(3</usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4>, ..., 832) = 832 <0.000063>
9173  08:56:04.740961 read(3</proc/filesystems>, ..., 1024) = 478 <0.000080>
9173  08:56:04.741210 read(3</proc/filesystems>, "", 1024) = 0 <0.000067>
9173  08:56:04.742237 read(3</etc/locale.alias>, ..., 4096) = 2996 <0.000097>
9173  08:56:04.742505 read(3</etc/locale.alias>, "", 4096) = 0 <0.000083>
9173  08:56:04.754208 read(4</etc/nsswitch.conf>, ..., 4096) = 542 <0.000140>
9173  08:56:04.754487 read(4</etc/nsswitch.conf>, "", 4096) = 0 <0.000027>
9173  08:56:04.755279 read(4</etc/passwd>, ..., 4096) = 1612 <0.000037>
9173  08:56:04.756740 read(4</etc/group>, ..., 4096) = 872 <0.000091>
9173  08:56:04.758661 write(1</dev/pts/7>, ..., 9) = 9 <0.000074>
9173  08:56:04.759173 read(3</usr/share/zoneinfo/Europe/Berlin>, ..., 4096) = 2298 <0.000074>
9173  08:56:04.759471 read(3</usr/share/zoneinfo/Europe/Berlin>, ..., 4096) = 1449 <0.000033>
9173  08:56:04.759816 write(1</dev/pts/7>, ..., 74) = 74 <0.000099>
9173  08:56:04.760043 write(1</dev/pts/7>, ..., 53) = 53 <0.000073>
9173  08:56:04.760233 write(1</dev/pts/7>, ..., 65) = 65 <0.000099>
"""

#: Fig. 2c — the unfinished/resumed example.
FIG2C_TEXT = """\
77423  16:56:40.452431 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, <unfinished ...>
77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>
"""


def _shift_pid(text: str, old: str, new: int) -> str:
    return text.replace(old, str(new))


@pytest.fixture(scope="session")
def ls_file_bytes() -> dict[str, bytes]:
    """The Fig. 1 ``ls`` / ``ls -l`` traces as per-file bytes."""
    import tempfile

    from repro.simulate.workloads.ls import generate_fig1_traces

    with tempfile.TemporaryDirectory() as scratch:
        generate_fig1_traces(scratch)
        return {path.name: path.read_bytes()
                for path in sorted(Path(scratch).iterdir())}


@pytest.fixture(scope="session")
def ior_file_bytes() -> dict[str, bytes]:
    """A small IOR run with a healthy share of unfinished/resumed
    pairs (the state live polling must carry) as per-file bytes."""
    import tempfile

    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    result = simulate_ior(IORConfig(
        ranks=4, ranks_per_node=2, segments=2, cid="ior", seed=424))
    with tempfile.TemporaryDirectory() as scratch:
        paths = write_trace_files(
            result.recorders, scratch,
            trace_calls=EXPERIMENT_A_CALLS,
            unfinished_probability=0.3, seed=11)
        return {path.name: path.read_bytes() for path in paths}


@pytest.fixture
def write_files():
    """The directory-population helper, as a fixture."""
    return write_all_files


@pytest.fixture(scope="session")
def write_all():
    """Session-scoped alias of the directory-population helper (the
    fleet suite's spelling)."""
    return write_all_files


@pytest.fixture(scope="session")
def fig1_dir(tmp_path_factory) -> Path:
    """The six trace files of Fig. 1: a_host1_{9042,9043,9045}.st and
    b_host1_{9157,9158,9160}.st — verbatim Fig. 2 content per rank."""
    directory = tmp_path_factory.mktemp("fig1")
    for rid, pid in ((9042, 9054), (9043, 9055), (9045, 9057)):
        (directory / f"a_host1_{rid}.st").write_text(
            _shift_pid(FIG2A_TEXT, "9054", pid))
    for rid, pid in ((9157, 9173), (9158, 9174), (9160, 9176)):
        (directory / f"b_host1_{rid}.st").write_text(
            _shift_pid(FIG2B_TEXT, "9173", pid))
    return directory


@pytest.fixture(scope="session")
def ls_sim_dir(tmp_path_factory) -> Path:
    """Simulator-generated Fig. 1 traces (staggered for Fig. 5)."""
    from repro.simulate.workloads.ls import generate_fig1_traces

    directory = tmp_path_factory.mktemp("ls_sim")
    generate_fig1_traces(directory)
    return directory


@pytest.fixture(scope="session")
def small_ior_pair():
    """A reduced SSF + FPP IOR pair (12 ranks, 2 nodes, 2 segments)."""
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    ssf = simulate_ior(IORConfig(
        ranks=12, ranks_per_node=6, segments=2, cid="ssf",
        test_file="/p/scratch/ssf/test", seed=101))
    fpp = simulate_ior(IORConfig(
        ranks=12, ranks_per_node=6, segments=2, cid="fpp",
        file_per_process=True, test_file="/p/scratch/fpp/test",
        base_rid=30000, seed=102))
    return ssf, fpp


@pytest.fixture(scope="session")
def small_ior_dir(tmp_path_factory, small_ior_pair) -> Path:
    """Trace directory for the reduced SSF+FPP pair (experiment-A calls)."""
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )

    directory = tmp_path_factory.mktemp("ior_small")
    ssf, fpp = small_ior_pair
    write_trace_files(ssf.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS)
    write_trace_files(fpp.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS)
    return directory

"""The HTTP sink: delivery, auth sourcing, and the bounded retry
budget that keeps a dead pager endpoint from stalling the poll loop."""

from __future__ import annotations

import io
import json
import urllib.error

import pytest

from repro.alerts import (
    AlertConfigError,
    AlertSinkWarning,
    HttpSink,
    load_rules_file,
)
from repro.alerts.model import Alert

ALERT = Alert(rule="r", kind="new_edge", subject="a -> b",
              message="m", value=1.0, threshold=0.0, n_poll=1,
              total_events=10)


class RecordingOpener:
    """Scripted opener: raises per the script, then succeeds."""

    def __init__(self, script=()):
        self.script = list(script)
        self.requests = []
        self.timeouts = []

    def __call__(self, request, timeout=None):
        self.requests.append(request)
        self.timeouts.append(timeout)
        if self.script:
            outcome = self.script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
        return io.BytesIO(b"ok")


def _http_error(code: int) -> urllib.error.HTTPError:
    return urllib.error.HTTPError("http://x", code, "boom", {},
                                  io.BytesIO(b""))


class TestDelivery:
    def test_posts_alert_json_with_content_type(self):
        opener = RecordingOpener()
        HttpSink("https://hooks.example/pager", timeout=3.0,
                 opener=opener).emit(ALERT)
        [request] = opener.requests
        assert request.get_method() == "POST"
        assert request.full_url == "https://hooks.example/pager"
        assert request.get_header("Content-type") == "application/json"
        assert json.loads(request.data) == ALERT.to_json()
        assert opener.timeouts == [3.0]

    def test_auth_header_from_environment(self, monkeypatch):
        monkeypatch.setenv("PAGER_TOKEN", "Bearer sesame")
        opener = RecordingOpener()
        HttpSink("https://hooks.example/p", auth_env="PAGER_TOKEN",
                 opener=opener).emit(ALERT)
        [request] = opener.requests
        assert request.get_header("Authorization") == "Bearer sesame"

    def test_no_auth_header_without_auth_env(self):
        opener = RecordingOpener()
        HttpSink("https://hooks.example/p", opener=opener).emit(ALERT)
        assert not opener.requests[0].has_header("Authorization")


class TestRetries:
    def test_network_error_retries_with_exponential_backoff(self):
        naps: list[float] = []
        opener = RecordingOpener([
            urllib.error.URLError("refused"), TimeoutError("slow")])
        HttpSink("https://h.example/p", retries=2, backoff=0.5,
                 opener=opener, sleep=naps.append).emit(ALERT)
        assert len(opener.requests) == 3  # two failures, then success
        assert naps == [0.5, 1.0]  # doubling

    def test_5xx_retries(self, recwarn):
        opener = RecordingOpener([_http_error(503)])
        HttpSink("https://h.example/p", retries=1, backoff=0,
                 opener=opener, sleep=lambda _: None).emit(ALERT)
        assert len(opener.requests) == 2
        assert not [w for w in recwarn.list
                    if issubclass(w.category, AlertSinkWarning)]

    def test_4xx_never_retries(self):
        opener = RecordingOpener([_http_error(404)] * 3)
        with pytest.warns(AlertSinkWarning, match="HTTP 404.*") as got:
            HttpSink("https://h.example/p", retries=2, backoff=0,
                     opener=opener, sleep=lambda _: None).emit(ALERT)
        assert len(opener.requests) == 1
        assert "after 1 attempt(s)" in str(got[0].message)

    def test_budget_exhaustion_warns_and_gives_up(self):
        naps: list[float] = []
        opener = RecordingOpener([urllib.error.URLError("dead")] * 5)
        with pytest.warns(AlertSinkWarning,
                          match="after 3 attempt"):
            HttpSink("https://h.example/p", retries=2, backoff=0.25,
                     opener=opener, sleep=naps.append).emit(ALERT)
        assert len(opener.requests) == 3  # the budget, no more
        assert naps == [0.25, 0.5]  # no sleep after the final attempt

    def test_zero_retries_is_single_shot(self):
        opener = RecordingOpener([urllib.error.URLError("dead")])
        with pytest.warns(AlertSinkWarning, match="after 1 attempt"):
            HttpSink("https://h.example/p", retries=0,
                     opener=opener).emit(ALERT)
        assert len(opener.requests) == 1


class TestValidation:
    def test_bad_scheme_rejected(self):
        with pytest.raises(AlertConfigError, match="http://"):
            HttpSink("ftp://files.example/drop")

    def test_bad_numbers_rejected(self):
        with pytest.raises(AlertConfigError, match="timeout"):
            HttpSink("https://h/p", timeout=0)
        with pytest.raises(AlertConfigError, match="retries"):
            HttpSink("https://h/p", retries=-1)
        with pytest.raises(AlertConfigError, match="backoff"):
            HttpSink("https://h/p", backoff=-0.5)

    def test_missing_auth_env_fails_at_construction(self, monkeypatch):
        monkeypatch.delenv("NOPE_TOKEN", raising=False)
        with pytest.raises(AlertConfigError, match="NOPE_TOKEN"):
            HttpSink("https://h/p", auth_env="NOPE_TOKEN")

    def test_empty_auth_env_fails_too(self, monkeypatch):
        monkeypatch.setenv("EMPTY_TOKEN", "")
        with pytest.raises(AlertConfigError, match="EMPTY_TOKEN"):
            HttpSink("https://h/p", auth_env="EMPTY_TOKEN")


class TestRulesFileConfig:
    def _load(self, tmp_path, sink_toml: str):
        path = tmp_path / "rules.toml"
        path.write_text(sink_toml
                        + "[[rule]]\nname='x'\ntype='new_edge'\n")
        return load_rules_file(path)

    def test_url_string_form(self, tmp_path):
        config = self._load(tmp_path,
                            "[sinks]\nhttp='https://h.example/p'\n")
        [sink] = config.sinks
        assert isinstance(sink, HttpSink)
        assert sink.url == "https://h.example/p"

    def test_table_form_with_options(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TOK", "secret")
        config = self._load(
            tmp_path,
            "[sinks.http]\nurl='https://h.example/p'\ntimeout=2.5\n"
            "retries=4\nbackoff=1.0\nauth_env='TOK'\n")
        [sink] = config.sinks
        assert (sink.timeout, sink.retries, sink.backoff) == \
            (2.5, 4, 1.0)

    def test_table_without_url_rejected(self, tmp_path):
        with pytest.raises(AlertConfigError, match="url"):
            self._load(tmp_path, "[sinks.http]\ntimeout=2.5\n")

    def test_unknown_table_key_rejected(self, tmp_path):
        with pytest.raises(AlertConfigError, match="colour"):
            self._load(tmp_path,
                       "[sinks.http]\nurl='https://h/p'\n"
                       "colour='red'\n")

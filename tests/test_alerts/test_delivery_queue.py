"""Background alert delivery: the poll loop never waits on a pager.

ROADMAP item 5c: with ``[sinks.queue]`` configured, sink dispatch
moves to a bounded background queue — ``evaluate`` returns as soon as
alerts are *recorded*, delivery happens on a worker thread, overflow
drops the oldest undelivered alert (the history keeps every record;
only the notification is shed), and ``finalize``/shutdown drains what
is queued. Without the table, delivery stays synchronous and inline —
byte-for-byte the pre-queue behaviour.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import Counter

import pytest

from repro.alerts import (
    AlertConfigError,
    AlertEngine,
    AlertSinkWarning,
    DeliveryQueue,
    NewEdgeRule,
    QueueConfig,
    StatThresholdRule,
)
from repro.alerts.config import parse_rules_data
from repro.live.engine import LiveIngest
from repro.telemetry import Telemetry
from tests.faultinject import (
    BlockingSink,
    FailingSink,
    RecordingSink,
    SlowSink,
)

BUSY = dict(metric="event_count", op=">", value=5)

#: Minimal valid [[rule]] table for parse_rules_data calls.
RULE = {"name": "edges", "type": "new_edge"}


def _queued_engine(sink, maxsize: int = 256) -> AlertEngine:
    return AlertEngine([StatThresholdRule("busy", **BUSY)],
                       sinks=[sink], queue=QueueConfig(maxsize=maxsize))


class TestQueueConfig:
    def test_defaults(self):
        assert QueueConfig().maxsize == 256

    @pytest.mark.parametrize("bad", [0, -1, -256])
    def test_maxsize_must_be_positive(self, bad):
        with pytest.raises(AlertConfigError, match="maxsize"):
            QueueConfig(maxsize=bad)


class TestDeliveryQueueUnit:
    def test_delivers_in_order_and_counts(self):
        seen = []
        queue = DeliveryQueue(lambda alert, telemetry:
                              seen.append(alert), maxsize=8)
        for n in range(5):
            queue.submit(n, None)
        assert queue.close()
        assert seen == [0, 1, 2, 3, 4]
        assert queue.n_submitted == 5
        assert queue.n_delivered == 5
        assert queue.n_dropped == 0

    def test_overflow_drops_oldest_deterministically(self):
        """With the worker wedged on item 0, submits past maxsize
        shed from the *front* of the backlog: the freshest alerts are
        the ones that reach the pager."""
        seen = []
        gate = threading.Event()
        entered = threading.Event()

        def deliver(alert, telemetry):
            entered.set()
            gate.wait(timeout=30.0)
            seen.append(alert)

        queue = DeliveryQueue(deliver, maxsize=3)
        queue.submit("wedged", None)
        assert entered.wait(timeout=5.0)  # worker busy, backlog empty
        for n in range(6):  # 3 fit; 3 evict the oldest queued
            queue.submit(n, None)
        assert queue.n_dropped == 3
        gate.set()
        assert queue.close()
        assert seen == ["wedged", 3, 4, 5]
        assert queue.n_delivered == 4

    def test_submit_after_close_delivers_inline(self):
        seen = []
        queue = DeliveryQueue(lambda alert, telemetry:
                              seen.append(alert), maxsize=8)
        queue.submit("before", None)
        assert queue.close()
        queue.submit("after", None)  # finalize-time stragglers
        assert seen == ["before", "after"]
        assert queue.close()  # idempotent

    def test_drain_waits_for_in_flight(self):
        gate = threading.Event()
        seen = []

        def deliver(alert, telemetry):
            gate.wait(timeout=30.0)
            seen.append(alert)

        queue = DeliveryQueue(deliver, maxsize=8)
        queue.submit("slow", None)
        assert not queue.drain(timeout=0.05)  # stuck behind the gate
        gate.set()
        assert queue.drain(timeout=5.0)
        assert seen == ["slow"]
        queue.close()


class TestEvaluateDoesNotWait:
    def test_returns_while_delivery_is_pending(self, tmp_path,
                                               ls_file_bytes,
                                               write_files):
        write_files(tmp_path, ls_file_bytes)
        sink = BlockingSink()
        alerts = _queued_engine(sink)
        engine = LiveIngest(tmp_path, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        assert fired  # evaluate returned...
        assert sink.entered.wait(timeout=5.0)  # ...delivery only began
        assert sink.n_emitted < len(fired)
        sink.release.set()
        assert alerts.shutdown(timeout=10.0)
        assert sink.n_emitted == len(fired)

    def test_poll_wall_time_independent_of_sink_latency(
            self, tmp_path, ls_file_bytes, write_files):
        """The acceptance property: a sink sleeping 200 ms per alert
        must not put 200 ms × alerts into the poll path."""
        write_files(tmp_path, ls_file_bytes)
        sink = SlowSink(delay=0.2)
        alerts = _queued_engine(sink)
        engine = LiveIngest(tmp_path, alerts=alerts)
        result = engine.poll()
        began = time.perf_counter()
        fired = alerts.evaluate(engine, result)
        elapsed = time.perf_counter() - began
        assert fired
        assert elapsed < 0.2  # strictly less than ONE delivery
        assert alerts.shutdown(timeout=60.0)
        assert sink.n_emitted == len(fired)

    def test_synchronous_without_queue_config(self, tmp_path,
                                              ls_file_bytes,
                                              write_files):
        """No ``[sinks.queue]``: delivery completes inside evaluate,
        exactly as before the queue existed."""
        write_files(tmp_path, ls_file_bytes)
        sink = RecordingSink()
        alerts = AlertEngine([StatThresholdRule("busy", **BUSY)],
                             sinks=[sink])
        engine = LiveIngest(tmp_path, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        assert alerts.delivery is None
        assert sink.alerts == fired  # already delivered, in order
        assert alerts.drain() and alerts.shutdown()  # no-op trivially


class TestFailuresAndDrain:
    def test_failing_sink_warns_from_the_worker(self, tmp_path,
                                                ls_file_bytes,
                                                write_files):
        write_files(tmp_path, ls_file_bytes)
        sink = FailingSink("pager down")
        alerts = _queued_engine(sink)
        engine = LiveIngest(tmp_path, alerts=alerts)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fired = alerts.evaluate(engine, engine.poll())
            assert alerts.shutdown(timeout=10.0)
        assert fired
        assert sink.attempts == len(fired)
        assert any(issubclass(w.category, AlertSinkWarning)
                   for w in caught)

    def test_close_drains_the_backlog(self, tmp_path, ls_file_bytes,
                                      write_files):
        """LiveIngest.close() (the finalize/rebuild path) delivers
        everything still queued before returning."""
        write_files(tmp_path, ls_file_bytes)
        sink = SlowSink(delay=0.01)
        alerts = _queued_engine(sink)
        engine = LiveIngest(tmp_path, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        engine.close()
        assert sink.n_emitted == len(fired)


class TestQueueTelemetry:
    def test_queue_metrics_are_exposed(self, tmp_path, ls_file_bytes,
                                       write_files):
        write_files(tmp_path, ls_file_bytes)
        telemetry = Telemetry()
        sink = RecordingSink()
        alerts = _queued_engine(sink)
        engine = LiveIngest(tmp_path, alerts=alerts,
                            telemetry=telemetry)
        fired = alerts.evaluate(engine, engine.poll())
        assert alerts.shutdown(timeout=10.0)
        alerts.evaluate(engine, engine.poll())  # idle: refresh gauges
        registry = telemetry.registry
        assert registry.gauge("sink_queue_depth").value == 0
        assert registry.counter("sink_queue_delivered_total").value \
            == len(fired)
        assert registry.counter("sink_queue_dropped_total").value == 0
        assert registry.histogram(
            "sink_queue_latency_seconds").count == len(fired)

    def test_drops_reach_the_counter(self, tmp_path, ls_file_bytes,
                                     write_files):
        write_files(tmp_path, ls_file_bytes)
        telemetry = Telemetry()
        sink = BlockingSink()
        alerts = _queued_engine(sink, maxsize=1)
        engine = LiveIngest(tmp_path, alerts=alerts,
                            telemetry=telemetry)
        fired = alerts.evaluate(engine, engine.poll())
        assert len(fired) > 2  # at most 2 survive the maxsize=1 queue
        sink.release.set()
        assert alerts.shutdown(timeout=10.0)
        alerts.evaluate(engine, engine.poll())  # idle: refresh gauges
        registry = telemetry.registry
        dropped = registry.counter("sink_queue_dropped_total").value
        delivered = registry.counter("sink_queue_delivered_total").value
        # Every fired alert either reached the sink or was shed —
        # never both, never neither. (Whether the worker grabbed the
        # first item before the flood decides 1 vs 2 delivered.)
        assert delivered + dropped == len(fired)
        assert 1 <= delivered <= 2
        assert sink.n_emitted == delivered

    def test_telemetry_toggle_does_not_change_what_fires(
            self, tmp_path, ls_file_bytes, write_files):
        """Observability must be read-only: the identity multiset is
        the same with the registry on and off, queue configured."""
        def run(telemetry):
            directory = tmp_path / ("on" if telemetry else "off")
            directory.mkdir()
            write_files(directory, ls_file_bytes)
            sink = RecordingSink()
            alerts = AlertEngine(
                [NewEdgeRule("edges"),
                 StatThresholdRule("busy", **BUSY)],
                sinks=[sink], queue=QueueConfig())
            kwargs = {"telemetry": telemetry} if telemetry else {}
            engine = LiveIngest(directory, alerts=alerts, **kwargs)
            alerts.evaluate(engine, engine.poll())
            alerts.evaluate(engine, engine.finalize())
            engine.close()
            return (Counter(a.identity for a in alerts.history),
                    Counter(a.identity for a in sink.alerts))

        assert run(Telemetry()) == run(None)


class TestRulesFileTable:
    def test_sinks_queue_table_builds_config(self):
        config = parse_rules_data(
            {"rule": [RULE], "sinks": {"queue": {"maxsize": 7}}})
        assert config.queue == QueueConfig(maxsize=7)

    def test_empty_table_gets_defaults(self):
        config = parse_rules_data({"rule": [RULE], "sinks": {"queue": {}}})
        assert config.queue == QueueConfig()

    def test_absent_table_means_synchronous(self):
        config = parse_rules_data({"rule": [RULE]})
        assert config.queue is None
        assert AlertEngine([], queue=config.queue).delivery is None

    def test_unknown_queue_key_is_an_error(self):
        with pytest.raises(AlertConfigError, match="maxsize"):
            parse_rules_data(
                {"rule": [RULE], "sinks": {"queue": {"workers": 4}}})

    def test_bad_maxsize_is_an_error(self):
        with pytest.raises(AlertConfigError, match="maxsize"):
            parse_rules_data(
                {"rule": [RULE], "sinks": {"queue": {"maxsize": 0}}})

    def test_engine_from_config_gets_a_delivery_queue(self, tmp_path):
        rules = tmp_path / "rules.toml"
        rules.write_text(
            "[[rule]]\nname = \"edges\"\ntype = \"new_edge\"\n\n"
            "[sinks.queue]\nmaxsize = 3\n")
        alerts = AlertEngine.from_rules_file(rules)
        assert alerts.delivery is not None
        assert alerts.shutdown()

"""Sidecar version migration: v2/v3 upgrade in place, v1 stays
rejected, alert state round-trips across kill/restart."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro._util.errors import ReproError
from repro.alerts import AlertEngine, NewEdgeRule
from repro.live.checkpoint import CHECKPOINT_VERSION
from repro.live.engine import LiveIngest


def checkpointed(tmp_path: Path, ls_file_bytes, write_files) -> Path:
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    write_files(trace_dir, ls_file_bytes)
    sidecar = tmp_path / "ckpt.json"
    engine = LiveIngest(trace_dir, checkpoint=sidecar)
    engine.poll()
    engine.save_checkpoint()
    return sidecar


def _downgrade_stats(stats_state: dict) -> None:
    """Rewrite v4 exact-sum partials as the legacy per-case ``rates``
    lists v2/v3 sidecars carried. ``[fsum(partials), 0, 0, ...]``
    preserves both the count and the exact sum, so the upgrade on load
    must reproduce the v4 state bit-identically."""
    for acc_state in stats_state["activities"].values():
        partials = acc_state.pop("rate_partials")
        count = acc_state.pop("rate_count")
        del acc_state["approximate"]
        if count:
            first = min(acc_state["cases"])
            acc_state["cases"][first]["rates"] = \
                [math.fsum(partials)] + [0.0] * (count - 1)


def downgrade_to_v2(sidecar: Path) -> None:
    state = json.loads(sidecar.read_text())
    assert state["version"] == CHECKPOINT_VERSION == 6
    state["version"] = 2
    del state["alerts"]
    del state["window"]
    del state["emit_offset"]
    del state["emit_packed"]
    del state["telemetry"]
    _downgrade_stats(state["stats"])
    sidecar.write_text(json.dumps(state))


def downgrade_to_v3(sidecar: Path) -> None:
    state = json.loads(sidecar.read_text())
    assert state["version"] == CHECKPOINT_VERSION == 6
    state["version"] = 3
    del state["window"]
    del state["emit_offset"]
    del state["emit_packed"]
    del state["telemetry"]
    _downgrade_stats(state["stats"])
    sidecar.write_text(json.dumps(state))


class TestV2Migration:
    def test_v2_loads_with_empty_alert_state(self, tmp_path,
                                             ls_file_bytes,
                                             write_files):
        sidecar = checkpointed(tmp_path, ls_file_bytes, write_files)
        events = LiveIngest(tmp_path / "traces",
                            checkpoint=sidecar).total_events
        downgrade_to_v2(sidecar)
        alerts = AlertEngine([NewEdgeRule("edges")])
        revived = LiveIngest(tmp_path / "traces", checkpoint=sidecar,
                             alerts=alerts)
        # Full engine state restored; alert state starts empty.
        assert revived.total_events == events
        assert alerts.n_fired == 0
        assert all(rule.latch_state() == {"tripped": []}
                   for rule in alerts.rules)

    def test_v2_upgrade_persists_as_current_after_restart(
            self, tmp_path, ls_file_bytes, write_files):
        """The restart test pinning the migration: resume a v2
        sidecar, poll, save — the rewritten sidecar is current-version
        with alert state, and a third life restores it."""
        sidecar = checkpointed(tmp_path, ls_file_bytes, write_files)
        downgrade_to_v2(sidecar)
        alerts = AlertEngine([NewEdgeRule("edges")])
        revived = LiveIngest(tmp_path / "traces", checkpoint=sidecar,
                             alerts=alerts)
        fired = alerts.evaluate(revived, revived.poll())
        assert fired  # the latches really did start empty
        revived.save_checkpoint()
        state = json.loads(sidecar.read_text())
        assert state["version"] == CHECKPOINT_VERSION
        assert len(state["alerts"]["history"]) == len(fired)
        third = AlertEngine([NewEdgeRule("edges")])
        life3 = LiveIngest(tmp_path / "traces", checkpoint=sidecar,
                           alerts=third)
        assert third.n_fired == len(fired)
        assert third.evaluate(life3, life3.poll()) == []

    def test_v2_without_alert_engine_still_loads(self, tmp_path,
                                                 ls_file_bytes,
                                                 write_files):
        sidecar = checkpointed(tmp_path, ls_file_bytes, write_files)
        downgrade_to_v2(sidecar)
        revived = LiveIngest(tmp_path / "traces", checkpoint=sidecar)
        revived.save_checkpoint()
        state = json.loads(sidecar.read_text())
        assert state["version"] == CHECKPOINT_VERSION
        assert state["alerts"] == {"rules": {}, "history": []}


class TestV3Migration:
    def test_v3_rates_fold_into_identical_partials(self, tmp_path,
                                                   ls_file_bytes,
                                                   write_files):
        """A v3 sidecar (per-case rate lists) restores to statistics
        bit-identical to the v4 sidecar it was downgraded from."""
        sidecar = checkpointed(tmp_path, ls_file_bytes, write_files)
        v4_state = json.loads(sidecar.read_text())
        downgrade_to_v3(sidecar)
        revived = LiveIngest(tmp_path / "traces", checkpoint=sidecar)
        revived.save_checkpoint()
        state = json.loads(sidecar.read_text())
        assert state["version"] == CHECKPOINT_VERSION
        for activity, acc_state in \
                state["stats"]["activities"].items():
            v4_acc = v4_state["stats"]["activities"][activity]
            assert acc_state["rate_count"] == v4_acc["rate_count"]
            assert math.fsum(acc_state["rate_partials"]) == \
                math.fsum(v4_acc["rate_partials"])

    def test_v3_keeps_alert_history(self, tmp_path, ls_file_bytes,
                                    write_files):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        alerts = AlertEngine([NewEdgeRule("edges")])
        engine = LiveIngest(trace_dir, checkpoint=sidecar,
                            alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        assert fired
        engine.save_checkpoint()
        downgrade_to_v3(sidecar)
        third = AlertEngine([NewEdgeRule("edges")])
        life2 = LiveIngest(trace_dir, checkpoint=sidecar, alerts=third)
        assert third.n_fired == len(fired)
        assert third.evaluate(life2, life2.poll()) == []


class TestV1StillRejected:
    def test_v1_rejected_with_rebuild_hint(self, tmp_path,
                                           ls_file_bytes, write_files):
        sidecar = checkpointed(tmp_path, ls_file_bytes, write_files)
        state = json.loads(sidecar.read_text())
        state["version"] = 1
        del state["stats"]
        del state["alerts"]
        sidecar.write_text(json.dumps(state))
        with pytest.raises(ReproError, match="delete the sidecar"):
            LiveIngest(tmp_path / "traces", checkpoint=sidecar)


class TestAlertStatePreservation:
    def test_restart_without_rules_keeps_alert_history(self, tmp_path,
                                                       ls_file_bytes,
                                                       write_files):
        """A life watched without --rules must not erase the alert
        state a previous life accumulated."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        alerts = AlertEngine([NewEdgeRule("edges")])
        engine = LiveIngest(trace_dir, checkpoint=sidecar,
                            alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        assert fired
        engine.save_checkpoint()
        # Second life: no alert engine attached.
        plain = LiveIngest(trace_dir, checkpoint=sidecar)
        plain.poll()
        plain.save_checkpoint()
        # Third life: rules are back; nothing re-fires.
        third = AlertEngine([NewEdgeRule("edges")])
        life3 = LiveIngest(trace_dir, checkpoint=sidecar, alerts=third)
        assert third.n_fired == len(fired)
        assert third.evaluate(life3, life3.poll()) == []

"""AlertEngine evaluation over real LiveIngest refreshes, and sinks."""

from __future__ import annotations

import io
import json
import warnings
from collections import Counter
from pathlib import Path

import pytest

from repro.alerts import (
    AlertEngine,
    AlertSinkWarning,
    CommandSink,
    EdgeWeightRatioRule,
    JsonlSink,
    NewEdgeRule,
    StatThresholdRule,
    StderrSink,
    WatermarkAgeRule,
)
from repro.core.activity import SENTINELS
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.live.engine import LiveIngest


class TestEvaluation:
    def test_new_edge_covers_final_graph_once(self, tmp_path,
                                              ls_file_bytes,
                                              write_files):
        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine([NewEdgeRule("edges")])
        engine = LiveIngest(tmp_path, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        # Exactly the non-sentinel edges of the final graph, once each.
        expected = {f"{a} -> {b}"
                    for a, b in engine.snapshot_dfg().edges()
                    if a not in SENTINELS and b not in SENTINELS}
        assert {alert.subject for alert in fired} == expected
        assert len(fired) == len(expected)
        # Idle refresh: nothing re-fires, history stands.
        assert alerts.evaluate(engine, engine.poll()) == []
        assert alerts.n_fired == len(expected)

    def test_alert_records_carry_poll_context(self, tmp_path,
                                              ls_file_bytes,
                                              write_files):
        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine([StatThresholdRule(
            "busy", metric="event_count", op=">", value=5)])
        engine = LiveIngest(tmp_path, alerts=alerts)
        result = engine.poll()
        fired = alerts.evaluate(engine, result)
        assert fired
        assert all(alert.n_poll == result.n_poll for alert in fired)
        assert all(alert.total_events == result.total_events
                   for alert in fired)

    def test_baseline_resolved_with_engine_mapping(self, tmp_path,
                                                   ls_file_bytes,
                                                   write_files):
        """A baseline of the same directory (opened as a source spec)
        makes every live edge 'known': absent_from_baseline stays
        quiet, and edge ratios against it fire at ratio 1."""
        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine(
            [NewEdgeRule("red-only", absent_from_baseline=True),
             EdgeWeightRatioRule("reached", ratio=1.0,
                                 against="baseline")],
            baseline=str(tmp_path))
        engine = LiveIngest(tmp_path, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        by_rule = Counter(alert.rule for alert in fired)
        assert by_rule["red-only"] == 0
        # Every non-sentinel baseline edge reaches its own count.
        log = EventLog.from_source(tmp_path, workers=1)
        from repro.core.dfg import DFG

        batch = DFG(log.with_mapping(CallTopDirs(levels=2)))
        expected = sum(1 for a, b in batch.edges()
                       if a not in SENTINELS and b not in SENTINELS)
        assert by_rule["reached"] == expected

    def test_watermark_rule_fires_on_starved_dir(self, starved_dir):
        alerts = AlertEngine([WatermarkAgeRule("starved", max_age=2.0)])
        engine = LiveIngest(starved_dir, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        assert [alert.subject for alert in fired] == ["job0"]
        # The same accessor feeds the rule and the status line.
        assert engine.watermark_ages() == {"job0": 5_000_000}
        # finalize orphans the unfinished call: starvation clears.
        engine.finalize()
        assert engine.watermark_ages() == {}

    def test_state_roundtrip_prevents_refires(self, tmp_path,
                                              ls_file_bytes,
                                              write_files):
        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine([NewEdgeRule("edges")])
        engine = LiveIngest(tmp_path, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        state = alerts.to_state()
        revived = AlertEngine([NewEdgeRule("edges")])
        revived.restore_state(state)
        assert revived.n_fired == len(fired)
        assert [a.identity for a in revived.history] == \
            [a.identity for a in fired]
        engine2 = LiveIngest(tmp_path, alerts=revived)
        assert revived.evaluate(engine2, engine2.poll()) == []


class TestSinks:
    def _fire_one(self, tmp_path, ls_file_bytes, write_files, sink):
        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine([StatThresholdRule(
            "busy", metric="event_count", op=">", value=5)],
            sinks=[sink])
        engine = LiveIngest(tmp_path, alerts=alerts)
        return alerts.evaluate(engine, engine.poll())

    def test_stderr_sink_lines(self, tmp_path, ls_file_bytes,
                               write_files):
        stream = io.StringIO()
        fired = self._fire_one(tmp_path, ls_file_bytes, write_files,
                               StderrSink(stream))
        lines = stream.getvalue().splitlines()
        assert len(lines) == len(fired)
        assert all(line.startswith("!! [busy] ") for line in lines)

    def test_jsonl_sink_appends_parseable_records(self, tmp_path,
                                                  ls_file_bytes,
                                                  write_files):
        out = tmp_path / "alerts.jsonl"
        fired = self._fire_one(tmp_path / "t", ls_file_bytes,
                               lambda d, fb: (d.mkdir(),
                                              write_files(d, fb)),
                               JsonlSink(out))
        rows = [json.loads(line)
                for line in out.read_text().splitlines()]
        assert [row["subject"] for row in rows] == \
            [alert.subject for alert in fired]
        assert all(row["rule"] == "busy" for row in rows)

    def test_command_sink_receives_json_payload(self, tmp_path,
                                                ls_file_bytes,
                                                write_files):
        out = tmp_path / "webhook.log"
        sink = CommandSink(f"cat >> {out}")
        fired = self._fire_one(tmp_path / "t2", ls_file_bytes,
                               lambda d, fb: (d.mkdir(),
                                              write_files(d, fb)),
                               sink)
        assert fired
        text = out.read_text()
        assert text.count('"rule": "busy"') == len(fired)

    def test_failing_command_warns_not_raises(self, tmp_path,
                                              ls_file_bytes,
                                              write_files):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fired = self._fire_one(tmp_path, ls_file_bytes, write_files,
                                   CommandSink("exit 3"))
        assert fired  # evaluation survived the sink failure
        assert any(issubclass(w.category, AlertSinkWarning)
                   for w in caught)

    def test_crashing_sink_warns_and_loses_nothing(self, tmp_path,
                                                   ls_file_bytes,
                                                   write_files):
        """The paging path must not take down the monitoring path: a
        raising sink warns, the poll loop survives, and the alerts
        are safe in the history (and in later sinks)."""
        class Boom:
            def emit(self, alert):
                raise RuntimeError("pager down")

        received: list = []

        class Capture:
            def emit(self, alert):
                received.append(alert)

        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine([NewEdgeRule("edges")],
                             sinks=[Boom(), Capture()])
        engine = LiveIngest(tmp_path, alerts=alerts)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fired = alerts.evaluate(engine, engine.poll())
        assert fired
        assert alerts.n_fired == len(fired)
        assert received == fired  # later sinks still served
        # Failure warnings are rate-limited: the first failure in a
        # streak warns immediately, then every 10th, and the warning
        # that breaks a silence reports how many it swallowed.
        sink_warnings = [w for w in caught
                         if issubclass(w.category, AlertSinkWarning)]
        expected = [n for n in range(1, len(fired) + 1)
                    if n == 1 or n % 10 == 0]
        assert len(sink_warnings) == len(expected)
        if len(expected) > 1:
            assert "suppressed" in str(sink_warnings[1].message)


class TestValidate:
    def test_baseline_requiring_rule_without_baseline_fails_fast(self):
        from repro.alerts import AlertConfigError

        alerts = AlertEngine([NewEdgeRule(
            "red-only", absent_from_baseline=True)])
        with pytest.raises(AlertConfigError, match="red-only"):
            alerts.validate()

    def test_unresolvable_baseline_fails_fast(self, tmp_path):
        from repro._util.errors import SourceError

        alerts = AlertEngine([EdgeWeightRatioRule(
            "vs-base", ratio=2.0, against="baseline")],
            baseline=str(tmp_path / "missing.elog"))
        with pytest.raises(SourceError, match="not found"):
            alerts.validate()

    def test_from_rules_file_validates_at_startup(self, tmp_path):
        from repro.alerts import AlertConfigError

        rules = tmp_path / "rules.toml"
        rules.write_text(
            "[[rule]]\nname = 'red-only'\ntype = 'new_edge'\n"
            "absent_from_baseline = true\n")
        with pytest.raises(AlertConfigError, match="red-only"):
            AlertEngine.from_rules_file(rules)

    def test_valid_configuration_passes(self):
        alerts = AlertEngine([EdgeWeightRatioRule(
            "vs-base", ratio=2.0, against="baseline")],
            baseline="sim:ls")
        assert alerts.validate() is alerts

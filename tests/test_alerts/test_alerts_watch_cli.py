"""Alerting through the watch loop and the ``st-inspector watch`` CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.alerts import AlertEngine, NewEdgeRule, WatermarkAgeRule
from repro.cli import main
from repro.live.engine import LiveIngest
from repro.live.watch import run_watch

RULES = """
[[rule]]
name = "any-edge"
type = "new_edge"
"""


def write_rules(tmp_path: Path, text: str = RULES) -> Path:
    path = tmp_path / "rules.toml"
    path.write_text(text)
    return path


class TestRunWatchAlerts:
    def test_alert_pane_rendered_first_refresh_only(self, tmp_path,
                                                    ls_file_bytes,
                                                    write_files):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        alerts = AlertEngine([NewEdgeRule("edges")])
        engine = LiveIngest(trace_dir, alerts=alerts)
        outputs: list[str] = []
        run_watch(engine, polls=2, interval=0, out=outputs.append,
                  sleep=lambda _: None)
        assert "ALERTS:" in outputs[0]
        assert "!! [edges] new edge" in outputs[0]
        # The pane leads the refresh: alerts come before diff/graph.
        assert outputs[0].index("ALERTS:") < outputs[0].index("NODES")
        # Nothing new on the idle poll: no pane.
        assert "ALERTS:" not in outputs[1]

    def test_starvation_note_in_status_line(self, starved_dir):
        engine = LiveIngest(starved_dir)
        outputs: list[str] = []
        run_watch(engine, polls=1, out=outputs.append,
                  sleep=lambda _: None)
        assert "sealing starved: 1 file(s), worst job0 at 5.000s" \
            in outputs[0]

    def test_watermark_rule_and_status_share_the_number(self,
                                                        starved_dir):
        alerts = AlertEngine([WatermarkAgeRule("starved", max_age=2.0)])
        engine = LiveIngest(starved_dir, alerts=alerts)
        outputs: list[str] = []
        run_watch(engine, polls=1, out=outputs.append,
                  sleep=lambda _: None)
        assert "!! [starved] case job0: sealing starved for 5.000s" \
            in outputs[0]
        assert "worst job0 at 5.000s" in outputs[0]


class TestCli:
    def test_watch_rules_renders_and_logs(self, tmp_path, ls_file_bytes,
                                          write_files, capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        rules = write_rules(tmp_path)
        alert_log = tmp_path / "alerts.jsonl"
        assert main(["watch", str(trace_dir), "--once",
                     "--rules", str(rules),
                     "--alert-log", str(alert_log)]) == 0
        out = capsys.readouterr().out
        assert "ALERTS:" in out
        rows = [json.loads(line)
                for line in alert_log.read_text().splitlines()]
        assert rows and all(row["rule"] == "any-edge" for row in rows)

    def test_malformed_rules_exit_nonzero_naming_rule(self, tmp_path,
                                                      capsys):
        rules = write_rules(tmp_path, """
[[rule]]
name = "bad-metric"
type = "stat_threshold"
metric = "nope"
op = ">"
value = 1
""")
        assert main(["watch", str(tmp_path), "--once",
                     "--rules", str(rules)]) == 2
        err = capsys.readouterr().err
        assert "bad-metric" in err
        assert "unknown metric" in err

    def test_unparseable_rules_exit_nonzero(self, tmp_path, capsys):
        rules = tmp_path / "rules.toml"
        rules.write_text("[[rule]\n")
        assert main(["watch", str(tmp_path), "--once",
                     "--rules", str(rules)]) == 2
        assert "malformed rules" in capsys.readouterr().err

    def test_alert_flags_require_rules(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path), "--once",
                     "--alert-log", str(tmp_path / "a.jsonl")]) == 2
        assert "--rules" in capsys.readouterr().err

    def test_restart_does_not_refire(self, tmp_path, ls_file_bytes,
                                     write_files, capsys):
        """Kill/restart with --checkpoint: the second life sees the
        same directory and fires nothing new."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        rules = write_rules(tmp_path)
        sidecar = tmp_path / "ckpt.json"
        assert main(["watch", str(trace_dir), "--once",
                     "--rules", str(rules),
                     "--checkpoint", str(sidecar)]) == 0
        first = capsys.readouterr().out
        assert "ALERTS:" in first
        assert main(["watch", str(trace_dir), "--once",
                     "--rules", str(rules),
                     "--checkpoint", str(sidecar)]) == 0
        second = capsys.readouterr().out
        assert "ALERTS:" not in second

    def test_baseline_flag_quiets_known_edges(self, tmp_path,
                                              ls_file_bytes,
                                              write_files, capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        rules = write_rules(tmp_path, """
[[rule]]
name = "red-only"
type = "new_edge"
absent_from_baseline = true
""")
        assert main(["watch", str(trace_dir), "--once",
                     "--rules", str(rules),
                     "--baseline", str(trace_dir)]) == 0
        assert "ALERTS:" not in capsys.readouterr().out

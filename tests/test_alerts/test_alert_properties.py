"""The alerting determinism invariant, under randomized poll schedules.

The acceptance property of the alerting engine: **for a given rules
file, the multiset of fired-alert identities is a deterministic
function of the final directory** — independent of how polls sliced
the growth (files appearing in any order, bytes cut at arbitrary
positions, unfinished/resumed pairs split across polls) and of
kill/restart cycles (latches and history ride the v3 sidecar).

Hypothesis drives the adversary exactly as in
``tests/test_live/test_live_properties.py``; every replay's identity
multiset must equal the reference replay's (one file at a time, fully
written, one poll each).

The rules file deliberately uses *latched monotone* conditions — new
non-sentinel edges, ``event_count``/``total_bytes`` thresholds, edge
weights reaching a baseline multiple — plus a ``watermark_age`` rule
whose bound nothing in the workload crosses. Rules over non-monotone
samples (``against = "previous"`` ratios, rate bounds) are
schedule-sensitive by design and are covered by the fixed-schedule
unit tests instead.
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alerts import AlertEngine
from repro.live.engine import LiveIngest
from tests.strategies import DirectoryGrower, growth_steps

#: The shared schedule strategy (see ``tests/strategies.py``).
steps = growth_steps(n_files=4, max_steps=25)

RULES_TEMPLATE = """
baseline = "{baseline}"

[[rule]]
name = "new-relations"
type = "new_edge"

[[rule]]
name = "busy-activity"
type = "stat_threshold"
metric = "event_count"
op = ">"
value = 5

[[rule]]
name = "heavy-activity"
type = "stat_threshold"
metric = "total_bytes"
op = ">="
value = 4096

[[rule]]
name = "outgrew-baseline"
type = "edge_weight_ratio"
ratio = 1.0
against = "baseline"

[[rule]]
name = "starved"
type = "watermark_age"
max_age = 1e9
"""


@pytest.fixture(scope="module")
def alert_fixture(ior_file_bytes):
    """(rules file, baseline dir) shared by every replay — plus the
    reference identity multiset of the simplest schedule."""
    scratch = tempfile.TemporaryDirectory()
    root = Path(scratch.name)
    baseline_dir = root / "baseline"
    baseline_dir.mkdir()
    # Baseline = a subset of the final directory: every baseline edge
    # is eventually reached by the live run (counts only grow), so
    # "outgrew-baseline" fires deterministically for each of them.
    name = sorted(ior_file_bytes)[0]
    (baseline_dir / name).write_bytes(ior_file_bytes[name])
    rules_path = root / "rules.toml"
    rules_path.write_text(
        RULES_TEMPLATE.format(baseline=baseline_dir.as_posix()))

    reference = _replay_identities(ior_file_bytes, [], rules_path)
    yield {"rules": rules_path, "reference": reference}
    scratch.cleanup()


def _replay_identities(file_bytes, schedule, rules_path, *,
                       restart_after=None) -> Counter:
    """Grow a fresh dir per the schedule, evaluating alerts per poll;
    returns the identity multiset of every alert ever fired."""
    with tempfile.TemporaryDirectory() as scratch:
        live_dir = Path(scratch) / "traces"
        live_dir.mkdir()
        sidecar = Path(scratch) / "ckpt.json"
        engine = LiveIngest(live_dir, checkpoint=sidecar,
                            alerts=AlertEngine.from_rules_file(
                                rules_path))

        def poll_and_evaluate():
            engine.alerts.evaluate(engine, engine.poll())

        grower = DirectoryGrower(live_dir, file_bytes)
        for step_index, (file_index, percent, poll) in \
                enumerate(schedule):
            grower.apply(file_index, percent)
            if poll:
                poll_and_evaluate()
            if restart_after is not None and step_index == restart_after:
                engine.save_checkpoint()
                # Kill: a fresh process re-loads the rules file and
                # resumes latches + history from the sidecar.
                engine = LiveIngest(live_dir, checkpoint=sidecar,
                                    alerts=AlertEngine.from_rules_file(
                                        rules_path))
        for _ in grower.each_finished():
            poll_and_evaluate()
        engine.alerts.evaluate(engine, engine.finalize())
        return Counter(alert.identity
                       for alert in engine.alerts.history)


class TestAlertDeterminism:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps)
    def test_identity_multiset_schedule_independent(self, schedule,
                                                    ior_file_bytes,
                                                    alert_fixture):
        observed = _replay_identities(ior_file_bytes, schedule,
                                      alert_fixture["rules"])
        assert observed == alert_fixture["reference"]

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=steps,
           restart_after=st.integers(min_value=0, max_value=24))
    def test_identity_multiset_kill_restart_stable(self, schedule,
                                                   restart_after,
                                                   ior_file_bytes,
                                                   alert_fixture):
        observed = _replay_identities(
            ior_file_bytes, schedule, alert_fixture["rules"],
            restart_after=min(restart_after,
                              max(len(schedule) - 1, 0)))
        assert observed == alert_fixture["reference"]

    def test_reference_is_nonempty_and_multirule(self, alert_fixture):
        """Guard against a vacuous property: the reference run must
        actually fire several rules."""
        fired_rules = {rule for rule, _, _ in alert_fixture["reference"]}
        assert {"new-relations", "busy-activity", "heavy-activity",
                "outgrew-baseline"} <= fired_rules
        assert "starved" not in fired_rules
        assert all(count == 1
                   for count in alert_fixture["reference"].values())

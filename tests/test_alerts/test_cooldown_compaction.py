"""Cooldown windows and alert-history compaction — the week-long-watch
bounds.

Cooldown: a subject that re-trips inside ``cooldown`` seconds of its
last *delivered* firing is suppressed — the latch still tracks the
condition (the rule's state stays correct), delivery is withheld and
counted in ``n_suppressed``, and the timestamps persist in the sidecar
so a restart does not re-page mid-cooldown.

Compaction: ``history_limit`` keeps the newest N alerts full-fidelity
and folds older ones into per-identity counts; ``n_fired`` (and
restart dedup) stay exact while the checkpoint stops growing with a
flapping rule.
"""

from __future__ import annotations

import json

import pytest

from repro.alerts import (
    AlertConfigError,
    AlertEngine,
    NewEdgeRule,
    StatThresholdRule,
    WatermarkAgeRule,
)
from repro.alerts.rules import RULE_TYPES, RefreshContext
from repro.core.dfg import DFG
from repro.core.statistics import IOStatistics
from repro.live.engine import LiveIngest


def _context(ages: dict[str, int], now: float | None,
             n_poll: int = 1) -> RefreshContext:
    """A minimal refresh for watermark rules (the oscillating kind)."""
    empty = IOStatistics()
    return RefreshContext(
        n_poll=n_poll, total_events=0, current=DFG(), previous=None,
        stats=empty, previous_stats=None, baseline_dfg=None,
        baseline_stats=None, watermark_ages=ages, now=now)


STARVED = {"case": 5_000_000}  # 5 s of trace time
HEALTHY: dict[str, int] = {}


class TestCooldown:
    def test_refire_inside_cooldown_is_suppressed(self):
        rule = WatermarkAgeRule("starved", max_age=1.0, cooldown=60.0)
        assert rule.evaluate(_context(STARVED, now=0.0))  # fires
        rule.evaluate(_context(HEALTHY, now=10.0))        # re-arms
        assert rule.evaluate(_context(STARVED, now=20.0)) == []
        assert rule.n_suppressed == 1
        # The latch still tracked the re-trip: staying starved does
        # not fire again once the cooldown elapses...
        assert rule.evaluate(_context(STARVED, now=100.0)) == []
        # ...but a fresh oscillation past the window delivers.
        rule.evaluate(_context(HEALTHY, now=110.0))
        fired = rule.evaluate(_context(STARVED, now=120.0))
        assert [alert.subject for alert in fired] == ["case"]
        assert rule.n_suppressed == 1

    def test_suppression_does_not_extend_the_window(self):
        """Cooldown runs from the last *delivered* firing; suppressed
        attempts must not push it out."""
        rule = WatermarkAgeRule("starved", max_age=1.0, cooldown=60.0)
        rule.evaluate(_context(STARVED, now=0.0))
        for when in (10.0, 30.0, 50.0):
            rule.evaluate(_context(HEALTHY, now=when - 5))
            assert rule.evaluate(_context(STARVED, now=when)) == []
        rule.evaluate(_context(HEALTHY, now=59.0))
        assert rule.evaluate(_context(STARVED, now=61.0))
        assert rule.n_suppressed == 3

    def test_zero_cooldown_never_suppresses(self):
        rule = WatermarkAgeRule("starved", max_age=1.0)
        for when in (0.0, 1.0, 2.0):
            assert rule.evaluate(_context(STARVED, now=when))
            rule.evaluate(_context(HEALTHY, now=when + 0.5))
        assert rule.n_suppressed == 0

    def test_no_clock_disables_gating(self):
        """``now=None`` (an AlertEngine built with ``clock=None``)
        must deliver rather than silently drop."""
        rule = WatermarkAgeRule("starved", max_age=1.0, cooldown=60.0)
        assert rule.evaluate(_context(STARVED, now=None))
        rule.evaluate(_context(HEALTHY, now=None))
        assert rule.evaluate(_context(STARVED, now=None))
        assert rule.n_suppressed == 0

    def test_negative_cooldown_rejected(self):
        with pytest.raises(AlertConfigError, match="cooldown"):
            NewEdgeRule("edges", cooldown=-1.0)

    def test_every_rule_type_accepts_cooldown(self):
        from repro.alerts.config import _accepted_options

        for kind, cls in RULE_TYPES.items():
            assert "cooldown" in _accepted_options(cls), kind

    def test_timestamps_survive_latch_roundtrip(self):
        rule = WatermarkAgeRule("starved", max_age=1.0, cooldown=60.0)
        rule.evaluate(_context(STARVED, now=7.5))
        state = json.loads(json.dumps(rule.latch_state()))
        revived = WatermarkAgeRule("starved", max_age=1.0,
                                   cooldown=60.0)
        revived.restore_latch(state)
        # Mid-cooldown after the restart: re-trip stays suppressed.
        revived.evaluate(_context(HEALTHY, now=10.0))
        assert revived.evaluate(_context(STARVED, now=20.0)) == []
        assert revived.n_suppressed == 1

    def test_empty_latch_keeps_v3_shape(self):
        """No cooldown activity → no ``last_fired`` key, so pre-v4
        sidecar fixtures keep validating."""
        assert NewEdgeRule("edges").latch_state() == {"tripped": []}

    def test_cooldown_loads_from_rules_file(self, tmp_path):
        from repro.alerts import load_rules_file

        path = tmp_path / "rules.toml"
        path.write_text("[[rule]]\nname='x'\ntype='watermark_age'\n"
                        "max_age=1.0\ncooldown=300\n")
        config = load_rules_file(path)
        assert config.rules[0].cooldown == 300


class TestCompaction:
    def _fired_engine(self, tmp_path, ls_file_bytes, write_files,
                      history_limit):
        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine([NewEdgeRule("edges")],
                             history_limit=history_limit)
        engine = LiveIngest(tmp_path, alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        return alerts, fired

    def test_history_is_bounded_but_n_fired_exact(self, tmp_path,
                                                  ls_file_bytes,
                                                  write_files):
        alerts, fired = self._fired_engine(tmp_path, ls_file_bytes,
                                           write_files,
                                           history_limit=3)
        assert len(fired) > 3  # the ls graph has more edges than that
        assert len(alerts.history) == 3
        assert alerts.n_fired == len(fired)
        assert sum(alerts.compacted.values()) == len(fired) - 3
        # The newest records survive full-fidelity.
        assert alerts.history == fired[-3:]

    def test_unbounded_engine_keeps_everything(self, tmp_path,
                                               ls_file_bytes,
                                               write_files):
        alerts, fired = self._fired_engine(tmp_path, ls_file_bytes,
                                           write_files,
                                           history_limit=None)
        assert alerts.history == fired
        assert alerts.compacted == {}

    def test_compacted_counts_survive_state_roundtrip(self, tmp_path,
                                                      ls_file_bytes,
                                                      write_files):
        alerts, fired = self._fired_engine(tmp_path, ls_file_bytes,
                                           write_files,
                                           history_limit=2)
        state = json.loads(json.dumps(alerts.to_state()))
        revived = AlertEngine([NewEdgeRule("edges")], history_limit=2)
        revived.restore_state(state)
        assert revived.n_fired == len(fired)
        assert revived.history == fired[-2:]
        assert revived.compacted == alerts.compacted

    def test_no_overflow_keeps_v3_state_shape(self, tmp_path,
                                              ls_file_bytes,
                                              write_files):
        alerts, _ = self._fired_engine(tmp_path, ls_file_bytes,
                                       write_files,
                                       history_limit=None)
        assert "compacted" not in alerts.to_state()

    def test_restore_recompacts_under_a_tighter_limit(self, tmp_path,
                                                      ls_file_bytes,
                                                      write_files):
        """Lowering history_limit between lives compacts the restored
        history down — totals still exact."""
        alerts, fired = self._fired_engine(tmp_path, ls_file_bytes,
                                           write_files,
                                           history_limit=None)
        tighter = AlertEngine([NewEdgeRule("edges")], history_limit=1)
        tighter.restore_state(
            json.loads(json.dumps(alerts.to_state())))
        assert len(tighter.history) == 1
        assert tighter.n_fired == len(fired)

    def test_bad_history_limit_rejected(self):
        with pytest.raises(AlertConfigError, match="history_limit"):
            AlertEngine([], history_limit=0)

    def test_history_limit_parses_from_rules_file(self, tmp_path):
        from repro.alerts import load_rules_file

        path = tmp_path / "rules.toml"
        path.write_text("history_limit = 10\n"
                        "[[rule]]\nname='x'\ntype='new_edge'\n")
        assert load_rules_file(path).history_limit == 10

    def test_bad_history_limit_in_file_names_itself(self, tmp_path):
        from repro.alerts import load_rules_file

        path = tmp_path / "rules.toml"
        path.write_text("history_limit = true\n"
                        "[[rule]]\nname='x'\ntype='new_edge'\n")
        with pytest.raises(AlertConfigError, match="history_limit"):
            load_rules_file(path)


class TestCheckpointIntegration:
    def test_compaction_and_cooldown_ride_the_sidecar(self, tmp_path,
                                                      ls_file_bytes,
                                                      write_files):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        sidecar = tmp_path / "ckpt.json"
        alerts = AlertEngine(
            [NewEdgeRule("edges"),
             StatThresholdRule("busy", metric="event_count", op=">",
                               value=5, cooldown=60.0)],
            history_limit=2)
        engine = LiveIngest(trace_dir, checkpoint=sidecar,
                            alerts=alerts)
        fired = alerts.evaluate(engine, engine.poll())
        assert fired
        engine.save_checkpoint()
        state = json.loads(sidecar.read_text())
        assert state["version"] == 6
        assert len(state["alerts"]["history"]) == 2
        assert state["alerts"]["compacted"]
        revived_rules = AlertEngine(
            [NewEdgeRule("edges"),
             StatThresholdRule("busy", metric="event_count", op=">",
                               value=5, cooldown=60.0)],
            history_limit=2)
        life2 = LiveIngest(trace_dir, checkpoint=sidecar,
                           alerts=revived_rules)
        assert revived_rules.n_fired == len(fired)
        assert revived_rules.evaluate(life2, life2.poll()) == []

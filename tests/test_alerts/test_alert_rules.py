"""Unit tests of the rule vocabulary over synthetic refresh contexts."""

from __future__ import annotations

import pytest

from repro.alerts import (
    ActivityLoadRatioRule,
    AlertConfigError,
    EdgeWeightRatioRule,
    NewEdgeRule,
    RefreshContext,
    StatThresholdRule,
    WatermarkAgeRule,
)
from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.dfg import DFG
from repro.core.statistics import StatsAccumulator


def dfg(edges: dict) -> DFG:
    nodes: dict[str, int] = {}
    for (a1, a2), count in edges.items():
        nodes[a1] = nodes.get(a1, 0) + count
        nodes[a2] = nodes.get(a2, 0) + count
    return DFG.from_counts(edges, nodes)


def stats_of(events: dict[str, list[tuple[int, int, int | None]]]):
    """IOStatistics from {activity: [(start, dur, size), ...]}."""
    acc = StatsAccumulator()
    for activity, rows in events.items():
        for start, dur, size in rows:
            acc.feed_event(activity, "case", rid=0, start_us=start,
                           dur_us=dur, size=size)
    return acc.statistics()


def ctx(*, current=None, previous=None, stats=None, previous_stats=None,
        baseline_dfg=None, baseline_stats=None, ages=None,
        n_poll=1) -> RefreshContext:
    return RefreshContext(
        n_poll=n_poll, total_events=0,
        current=current if current is not None else dfg({}),
        previous=previous,
        stats=stats if stats is not None else stats_of({}),
        previous_stats=previous_stats,
        baseline_dfg=baseline_dfg, baseline_stats=baseline_stats,
        watermark_ages=ages or {})


class TestNewEdge:
    def test_fires_once_per_edge(self):
        rule = NewEdgeRule("edges")
        first = rule.evaluate(ctx(current=dfg({("a", "b"): 1})))
        assert [a.subject for a in first] == ["a -> b"]
        assert first[0].rule == "edges"
        assert first[0].kind == "new_edge"
        # Same edge again (weight grew): latched, no refire.
        assert rule.evaluate(ctx(current=dfg({("a", "b"): 5}))) == []
        # A second edge fires alone.
        grown = rule.evaluate(ctx(current=dfg({("a", "b"): 5,
                                               ("b", "c"): 1})))
        assert [a.subject for a in grown] == ["b -> c"]

    def test_sentinel_edges_excluded_by_default(self):
        rule = NewEdgeRule("edges")
        g = dfg({(START_ACTIVITY, "a"): 1, ("a", END_ACTIVITY): 1,
                 ("a", "b"): 1})
        assert [a.subject for a in rule.evaluate(ctx(current=g))] \
            == ["a -> b"]
        included = NewEdgeRule("all", include_sentinels=True)
        assert len(included.evaluate(ctx(current=g))) == 3

    def test_pattern_filters_on_edge_label(self):
        rule = NewEdgeRule("reads", pattern="read")
        g = dfg({("read:/x", "write:/y"): 1, ("open:/x", "close:/x"): 1})
        assert [a.subject for a in rule.evaluate(ctx(current=g))] \
            == ["read:/x -> write:/y"]

    def test_absent_from_baseline(self):
        rule = NewEdgeRule("red-only", absent_from_baseline=True)
        base = dfg({("a", "b"): 7})
        g = dfg({("a", "b"): 1, ("a", "c"): 1})
        fired = rule.evaluate(ctx(current=g, baseline_dfg=base))
        assert [a.subject for a in fired] == ["a -> c"]
        assert "not in baseline" in fired[0].message

    def test_absent_from_baseline_without_baseline_raises(self):
        rule = NewEdgeRule("red-only", absent_from_baseline=True)
        with pytest.raises(AlertConfigError, match="red-only"):
            rule.evaluate(ctx(current=dfg({("a", "b"): 1})))

    def test_vanished_sentinel_edge_rearms(self):
        rule = NewEdgeRule("all", include_sentinels=True)
        closing = {("a", END_ACTIVITY): 1}
        assert len(rule.evaluate(ctx(current=dfg(closing)))) == 1
        # The case grew: closing edge moved; the old one re-arms...
        moved = dfg({("a", "b"): 1, ("b", END_ACTIVITY): 1})
        fired = {a.subject for a in rule.evaluate(ctx(current=moved))}
        assert fired == {"a -> b", f"b -> {END_ACTIVITY}"}
        # ...and fires again if it comes back.
        again = rule.evaluate(ctx(current=dfg(closing)))
        assert [a.subject for a in again] == [f"a -> {END_ACTIVITY}"]


class TestEdgeWeightRatio:
    def test_fires_against_previous_on_jump(self):
        rule = EdgeWeightRatioRule("spike", ratio=2.0)
        assert rule.evaluate(ctx(current=dfg({("a", "b"): 2}))) == []
        fired = rule.evaluate(ctx(current=dfg({("a", "b"): 4}),
                                  previous=dfg({("a", "b"): 2})))
        assert [a.subject for a in fired] == ["a -> b"]
        assert fired[0].value == pytest.approx(2.0)
        assert fired[0].threshold == pytest.approx(2.0)

    def test_latches_until_rearmed(self):
        rule = EdgeWeightRatioRule("spike", ratio=2.0)
        prev = dfg({("a", "b"): 2})
        assert rule.evaluate(ctx(current=dfg({("a", "b"): 4}),
                                 previous=prev)) != []
        # Still doubled vs the new previous: tripped, no refire — a
        # sustained x2-per-refresh growth pages once, not every poll.
        assert rule.evaluate(ctx(current=dfg({("a", "b"): 8}),
                                 previous=dfg({("a", "b"): 4}))) == []
        # A quiet refresh re-arms it; the next doubling pages again.
        assert rule.evaluate(ctx(current=dfg({("a", "b"): 8}),
                                 previous=dfg({("a", "b"): 8}))) == []
        assert rule.evaluate(ctx(current=dfg({("a", "b"): 16}),
                                 previous=dfg({("a", "b"): 8}))) != []

    def test_collapse_ratio_below_one(self):
        rule = EdgeWeightRatioRule("collapse", ratio=0.5,
                                   against="baseline")
        base = dfg({("a", "b"): 10})
        fired = rule.evaluate(ctx(current=dfg({("a", "b"): 4}),
                                  baseline_dfg=base))
        assert [a.subject for a in fired] == ["a -> b"]

    def test_min_count_suppresses_noise(self):
        rule = EdgeWeightRatioRule("spike", ratio=2.0, min_count=3)
        fired = rule.evaluate(ctx(current=dfg({("a", "b"): 4}),
                                  previous=dfg({("a", "b"): 2})))
        assert fired == []

    def test_bad_options_rejected(self):
        with pytest.raises(AlertConfigError, match="ratio"):
            EdgeWeightRatioRule("r", ratio=0)
        with pytest.raises(AlertConfigError, match="against"):
            EdgeWeightRatioRule("r", ratio=2, against="nope")
        with pytest.raises(AlertConfigError, match="min_count"):
            EdgeWeightRatioRule("r", ratio=2, min_count=0)


class TestActivityLoadRatio:
    def test_load_doubling_fires(self):
        rule = ActivityLoadRatioRule("load", ratio=2.0)
        prev = stats_of({"a": [(0, 100, None)], "b": [(0, 900, None)]})
        cur = stats_of({"a": [(0, 150, None)], "b": [(0, 900, None)]})
        # rd(a): 0.1 -> 150/1050 ≈ 0.143, ratio ≈ 1.43 — not doubled.
        assert rule.evaluate(ctx(stats=cur, previous_stats=prev)) == []
        cur = stats_of({"a": [(0, 500, None)], "b": [(0, 900, None)]})
        # rd(a): 0.1 -> 500/1400 ≈ 0.357, ratio ≈ 3.57 — fires.
        fired = rule.evaluate(ctx(stats=cur, previous_stats=prev))
        assert [a.subject for a in fired] == ["a"]

    def test_rate_collapse_against_baseline(self):
        rule = ActivityLoadRatioRule(
            "rate-collapse", ratio=0.5, against="baseline",
            metric="process_data_rate")
        base = stats_of({"a": [(0, 100, 1000)]})    # 10 MB/s
        cur = stats_of({"a": [(0, 100, 100)]})      # 1 MB/s
        fired = rule.evaluate(ctx(stats=cur, baseline_stats=base))
        assert [a.subject for a in fired] == ["a"]
        assert "process_data_rate" in fired[0].message

    def test_missing_reference_activity_skipped(self):
        rule = ActivityLoadRatioRule("load", ratio=2.0)
        prev = stats_of({"b": [(0, 100, None)]})
        cur = stats_of({"a": [(0, 100, None)], "b": [(0, 100, None)]})
        assert rule.evaluate(ctx(stats=cur, previous_stats=prev)) == []

    def test_unknown_metric_rejected(self):
        with pytest.raises(AlertConfigError, match="unknown metric"):
            ActivityLoadRatioRule("r", ratio=2, metric="nope")


class TestStatThreshold:
    def test_threshold_crossing_latches_and_rearms(self):
        rule = StatThresholdRule("busy", metric="event_count",
                                 op=">", value=2)
        one = stats_of({"a": [(0, 1, None)]})
        assert rule.evaluate(ctx(stats=one)) == []
        three = stats_of({"a": [(0, 1, None)] * 3})
        fired = rule.evaluate(ctx(stats=three))
        assert [a.subject for a in fired] == ["a"]
        assert fired[0].value == 3.0
        # Still above: latched.
        assert rule.evaluate(ctx(stats=three)) == []

    def test_pattern_restricts_activities(self):
        rule = StatThresholdRule("reads", metric="event_count",
                                 op=">=", value=1, pattern="read")
        stats = stats_of({"read:/x": [(0, 1, None)],
                          "write:/y": [(0, 1, None)]})
        assert [a.subject for a in rule.evaluate(ctx(stats=stats))] \
            == ["read:/x"]

    def test_rate_below_bound(self):
        rule = StatThresholdRule("slow", metric="process_data_rate",
                                 op="<", value=5e6)
        stats = stats_of({"a": [(0, 100, 100)]})  # 1 MB/s
        assert len(rule.evaluate(ctx(stats=stats))) == 1

    def test_bad_options_rejected(self):
        with pytest.raises(AlertConfigError, match="unknown metric"):
            StatThresholdRule("r", metric="nope", op=">", value=1)
        with pytest.raises(AlertConfigError, match="unknown op"):
            StatThresholdRule("r", metric="event_count", op="~", value=1)


class TestWatermarkAge:
    def test_fires_over_threshold_and_rearms_on_recovery(self):
        rule = WatermarkAgeRule("starved", max_age=2.0)
        fired = rule.evaluate(ctx(ages={"a": 5_000_000,
                                        "b": 1_000_000}))
        assert [a.subject for a in fired] == ["a"]
        assert "5.000s" in fired[0].message
        # Still starving: latched.
        assert rule.evaluate(ctx(ages={"a": 6_000_000})) == []
        # Recovered, then starves again: refires.
        assert rule.evaluate(ctx(ages={})) == []
        assert len(rule.evaluate(ctx(ages={"a": 9_000_000}))) == 1

    def test_negative_age_rejected(self):
        with pytest.raises(AlertConfigError, match="max_age"):
            WatermarkAgeRule("r", max_age=-1)


class TestLatchState:
    def test_roundtrip(self):
        rule = NewEdgeRule("edges")
        rule.evaluate(ctx(current=dfg({("a", "b"): 1})))
        state = rule.latch_state()
        revived = NewEdgeRule("edges")
        revived.restore_latch(state)
        assert revived.evaluate(ctx(current=dfg({("a", "b"): 2}))) == []

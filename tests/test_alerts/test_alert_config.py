"""The rules-file loader: grammar, validation, error naming."""

from __future__ import annotations

import json

import pytest

from repro.alerts import (
    AlertConfigError,
    CommandSink,
    JsonlSink,
    NewEdgeRule,
    StatThresholdRule,
    StderrSink,
    WatermarkAgeRule,
    load_rules_file,
)

GOOD_TOML = """
baseline = "sim:ls"

[sinks]
stderr = true
jsonl = "alerts.jsonl"
command = "cat > /dev/null"

[[rule]]
name = "unexpected-edges"
type = "new_edge"
pattern = "read"

[[rule]]
name = "busy-activity"
type = "stat_threshold"
metric = "event_count"
op = ">"
value = 100

[[rule]]
name = "starved"
type = "watermark_age"
max_age = 2.5
"""


class TestLoading:
    def test_toml_roundtrip(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(GOOD_TOML)
        rules, sinks, baseline, history_limit, queue = load_rules_file(path)
        assert [type(rule) for rule in rules] == \
            [NewEdgeRule, StatThresholdRule, WatermarkAgeRule]
        assert [rule.name for rule in rules] == \
            ["unexpected-edges", "busy-activity", "starved"]
        assert rules[0].pattern == "read"
        assert rules[1].op == ">" and rules[1].value == 100
        assert rules[2].max_age == 2.5
        assert [type(sink) for sink in sinks] == \
            [StderrSink, JsonlSink, CommandSink]
        assert baseline == "sim:ls"
        assert history_limit is None
        assert queue is None

    def test_json_equivalent(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({
            "rule": [{"name": "edges", "type": "new_edge"}],
            "sinks": {"jsonl": "a.jsonl"},
        }))
        config = load_rules_file(path)
        assert isinstance(config.rules[0], NewEdgeRule)
        assert isinstance(config.sinks[0], JsonlSink)
        assert config.baseline is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(AlertConfigError, match="cannot read"):
            load_rules_file(tmp_path / "nope.toml")

    def test_unparseable_toml_names_file(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text("[[rule]\nname=")
        with pytest.raises(AlertConfigError, match="malformed rules"):
            load_rules_file(path)


def _load(tmp_path, text: str):
    path = tmp_path / "rules.toml"
    path.write_text(text)
    return load_rules_file(path)


class TestValidationNamesTheRule:
    def test_unknown_type(self, tmp_path):
        with pytest.raises(AlertConfigError,
                           match=r"rule 'x': unknown type 'nope'"):
            _load(tmp_path, "[[rule]]\nname='x'\ntype='nope'\n")

    def test_missing_name(self, tmp_path):
        with pytest.raises(AlertConfigError, match="name"):
            _load(tmp_path, "[[rule]]\ntype='new_edge'\n")

    def test_unknown_option(self, tmp_path):
        with pytest.raises(
                AlertConfigError,
                match=r"rule 'x': unknown option\(s\) colour"):
            _load(tmp_path,
                  "[[rule]]\nname='x'\ntype='new_edge'\ncolour='red'\n")

    def test_missing_required_option(self, tmp_path):
        with pytest.raises(AlertConfigError, match=r"rule 'x':"):
            _load(tmp_path,
                  "[[rule]]\nname='x'\ntype='stat_threshold'\n"
                  "metric='event_count'\n")

    def test_bad_option_type(self, tmp_path):
        with pytest.raises(AlertConfigError,
                           match=r"rule 'x': option 'value' must be "
                                 r"a number"):
            _load(tmp_path,
                  "[[rule]]\nname='x'\ntype='stat_threshold'\n"
                  "metric='event_count'\nop='>'\nvalue='lots'\n")

    def test_bad_metric_names_rule(self, tmp_path):
        with pytest.raises(AlertConfigError,
                           match=r"rule 'x': unknown metric"):
            _load(tmp_path,
                  "[[rule]]\nname='x'\ntype='stat_threshold'\n"
                  "metric='nope'\nop='>'\nvalue=1\n")

    def test_duplicate_rule_name(self, tmp_path):
        with pytest.raises(AlertConfigError, match="duplicate"):
            _load(tmp_path,
                  "[[rule]]\nname='x'\ntype='new_edge'\n"
                  "[[rule]]\nname='x'\ntype='new_edge'\n")

    def test_no_rules(self, tmp_path):
        with pytest.raises(AlertConfigError, match="no rules"):
            _load(tmp_path, "baseline = 'sim:ls'\n")

    def test_unknown_top_level_key(self, tmp_path):
        with pytest.raises(AlertConfigError, match="unknown top-level"):
            _load(tmp_path,
                  "rules = 1\n[[rule]]\nname='x'\ntype='new_edge'\n")

    def test_unknown_sink(self, tmp_path):
        with pytest.raises(AlertConfigError, match="unknown sink"):
            _load(tmp_path,
                  "[sinks]\nslack='#ops'\n"
                  "[[rule]]\nname='x'\ntype='new_edge'\n")

    def test_bad_sink_value(self, tmp_path):
        with pytest.raises(AlertConfigError, match="jsonl"):
            _load(tmp_path,
                  "[sinks]\njsonl=true\n"
                  "[[rule]]\nname='x'\ntype='new_edge'\n")

    def test_bad_baseline(self, tmp_path):
        with pytest.raises(AlertConfigError, match="baseline"):
            _load(tmp_path,
                  "baseline = 7\n[[rule]]\nname='x'\ntype='new_edge'\n")

"""Fixtures for the alerting suite.

Reuses the live suite's device — workloads rendered to per-file bytes,
replayed into fresh directories in increments — plus a hand-written
*starvation* trace: an ``<unfinished ...>`` call that never resumes,
parking every later record of its file behind the seal watermark.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def ls_file_bytes() -> dict[str, bytes]:
    """The Fig. 1 ``ls`` / ``ls -l`` traces as per-file bytes."""
    from repro.simulate.workloads.ls import generate_fig1_traces

    with tempfile.TemporaryDirectory() as scratch:
        generate_fig1_traces(scratch)
        return {path.name: path.read_bytes()
                for path in sorted(Path(scratch).iterdir())}


@pytest.fixture(scope="session")
def ior_file_bytes() -> dict[str, bytes]:
    """A small IOR run with unfinished/resumed pairs."""
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    result = simulate_ior(IORConfig(
        ranks=4, ranks_per_node=2, segments=2, cid="ior", seed=424))
    with tempfile.TemporaryDirectory() as scratch:
        paths = write_trace_files(
            result.recorders, scratch,
            trace_calls=EXPERIMENT_A_CALLS,
            unfinished_probability=0.3, seed=11)
        return {path.name: path.read_bytes() for path in paths}


#: One file whose first call never resumes: the two later writes are
#: complete but stay buffered behind the watermark (08:00:00), so the
#: file's sealing starves by 5 s of trace time.
STARVED_TRACE = (
    b"101  08:00:00.000000 read(3</data/in>, <unfinished ...>\n"
    b"102  08:00:01.000000 write(4</data/out>, ..., 100) = 100"
    b" <0.000100>\n"
    b"102  08:00:05.000000 write(4</data/out>, ..., 100) = 100"
    b" <0.000100>\n"
)


@pytest.fixture
def starved_dir(tmp_path) -> Path:
    """A trace directory with one healthy and one starving file."""
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    (trace_dir / "job_host1_0.st").write_bytes(STARVED_TRACE)
    (trace_dir / "job_host1_1.st").write_bytes(
        b"201  08:00:00.500000 write(5</data/log>, ..., 10) = 10"
        b" <0.000050>\n")
    return trace_dir


def write_all(directory: Path, file_bytes: dict[str, bytes]) -> None:
    for filename, content in file_bytes.items():
        (directory / filename).write_bytes(content)


@pytest.fixture
def write_files():
    """The directory-population helper, as a fixture."""
    return write_all

"""Fixtures for the alerting suite.

Reuses the live suite's device — workloads rendered to per-file bytes
(shared session fixtures in the root ``tests/conftest.py``), replayed
into fresh directories in increments — plus a hand-written
*starvation* trace: an ``<unfinished ...>`` call that never resumes,
parking every later record of its file behind the seal watermark.
"""

from __future__ import annotations

from pathlib import Path

import pytest


#: One file whose first call never resumes: the two later writes are
#: complete but stay buffered behind the watermark (08:00:00), so the
#: file's sealing starves by 5 s of trace time.
STARVED_TRACE = (
    b"101  08:00:00.000000 read(3</data/in>, <unfinished ...>\n"
    b"102  08:00:01.000000 write(4</data/out>, ..., 100) = 100"
    b" <0.000100>\n"
    b"102  08:00:05.000000 write(4</data/out>, ..., 100) = 100"
    b" <0.000100>\n"
)


@pytest.fixture
def starved_dir(tmp_path) -> Path:
    """A trace directory with one healthy and one starving file."""
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    (trace_dir / "job_host1_0.st").write_bytes(STARVED_TRACE)
    (trace_dir / "job_host1_1.st").write_bytes(
        b"201  08:00:00.500000 write(5</data/log>, ..., 10) = 10"
        b" <0.000050>\n")
    return trace_dir

"""The pre-compaction export seam (ROADMAP item 5d).

``history_limit`` compaction used to silently degrade the oldest
alerts to per-identity counts. Now an :attr:`AlertEngine.export_hook`
receives the full records *before* the fold — the run catalog's
:class:`~repro.catalog.export.AlertExportBuffer` is the standard
consumer — and an engine compacting *without* a hook warns once that
detail is being discarded. A hook that raises must not break
compaction (the week-long watch survives; the operator is warned).
"""

from __future__ import annotations

import warnings

import pytest

from repro.alerts import AlertEngine, NewEdgeRule
from repro.catalog import AlertExportBuffer
from repro.live.engine import LiveIngest


def _fired_engine(tmp_path, ls_file_bytes, write_files, *,
                  history_limit, hook=None):
    write_files(tmp_path, ls_file_bytes)
    alerts = AlertEngine([NewEdgeRule("edges")],
                         history_limit=history_limit)
    if hook is not None:
        alerts.export_hook = hook
    engine = LiveIngest(tmp_path, alerts=alerts)
    fired = alerts.evaluate(engine, engine.poll())
    return alerts, fired


class TestExportHook:
    def test_hook_receives_exactly_the_discarded_records(
            self, tmp_path, ls_file_bytes, write_files):
        buffer = AlertExportBuffer()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a hooked engine is silent
            alerts, fired = _fired_engine(
                tmp_path, ls_file_bytes, write_files,
                history_limit=3, hook=buffer)
        assert len(fired) > 3
        assert buffer.exported == fired[:-3]
        assert len(buffer) == len(fired) - 3
        # exported + surviving history = the full chronological run.
        assert buffer.full_history(alerts.history) == tuple(fired)

    def test_full_history_without_overflow(self, tmp_path,
                                           ls_file_bytes,
                                           write_files):
        buffer = AlertExportBuffer()
        alerts, fired = _fired_engine(tmp_path, ls_file_bytes,
                                      write_files, history_limit=None,
                                      hook=buffer)
        assert buffer.exported == []
        assert buffer.full_history(alerts.history) == tuple(fired)

    def test_unhooked_compaction_warns_exactly_once(self, tmp_path,
                                                    ls_file_bytes,
                                                    write_files):
        write_files(tmp_path, ls_file_bytes)
        alerts = AlertEngine([NewEdgeRule("edges")], history_limit=2)
        engine = LiveIngest(tmp_path, alerts=alerts)
        with pytest.warns(RuntimeWarning,
                          match="history_limit=2 reached"):
            alerts.evaluate(engine, engine.poll())
        # The latch: later compactions stay quiet (a week-long watch
        # must not emit one warning per refresh).
        alerts.history.extend(alerts.history[:3] * 2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            alerts._compact()
        assert len(alerts.history) == 2

    def test_failing_hook_warns_but_compaction_proceeds(
            self, tmp_path, ls_file_bytes, write_files):
        def broken(discarded):
            raise OSError("export target went away")

        with pytest.warns(RuntimeWarning,
                          match="alert export hook failed"):
            alerts, fired = _fired_engine(
                tmp_path, ls_file_bytes, write_files,
                history_limit=2, hook=broken)
        assert len(alerts.history) == 2
        assert alerts.n_fired == len(fired)  # totals stay exact


class TestWatchJobIntegration:
    def test_compacted_detail_reaches_the_catalog(self, tmp_path,
                                                  ls_file_bytes,
                                                  write_files):
        """End to end: a watch whose history_limit is tighter than its
        alert volume still catalogs *every* alert in full detail."""
        from repro.catalog import RunCatalog
        from repro.fleet.job import JobSpec

        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        write_files(trace_dir, ls_file_bytes)
        rules = tmp_path / "rules.toml"
        rules.write_text("""
history_limit = 2

[[rule]]
name = "edges"
type = "new_edge"
""")
        catalog_path = tmp_path / "cat.db"
        spec = JobSpec(name="app1", source=str(trace_dir),
                       interval=0.0, rules=str(rules),
                       catalog=str(catalog_path), run_name="app1")
        job = spec.build()
        job.poll_once()
        job.finalize()
        engine = job.engine.alerts
        assert len(engine.history) == 2  # compaction really happened
        catalog = RunCatalog(catalog_path, create=False)
        (row,) = catalog.list_runs()
        stored = catalog.alerts(row.id)
        assert len(stored) == engine.n_fired > 2
        # Chronological: the compacted records precede the survivors.
        assert stored[-2:] == engine.history

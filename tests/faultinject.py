"""Reusable fault-injection harness for the durability suites.

Every crash-consistency suite in this repo plays the same adversary:
*kill the process at a specific durability step* (by making that step
raise, which aborts the operation exactly where a SIGKILL would),
restart, and assert the on-disk state is one of the complete states —
never torn. This module is that adversary, extracted from the ad-hoc
copies that grew in ``test_live``/``test_alerts``/``test_catalog``:

- :func:`kill_call` — generic nth-call kill switch for a module-level
  seam (``os.fsync``, ``os.replace``, a ``_fsync_directory`` helper).
- :func:`kill_checkpoint_at` / :data:`CHECKPOINT_KILL_POINTS` — the
  checkpoint save steps (temp fsync → replace → dir fsync).
- :func:`kill_compaction_at` / :data:`COMPACTION_KILL_POINTS` — the
  six durability steps of one emit-journal compaction (three for the
  ``.elog`` rewrite, three for the journal rewrite).
- :func:`kill_method` — object-level kill (the catalog suite's
  pattern: die inside a named method).
- Sink fakes for the alert-delivery suites: :class:`RecordingSink`,
  :class:`FailingSink`, :class:`FlakySink`, :class:`SlowSink`,
  :class:`BlockingSink`.
- :func:`tear_tail` — torn-write simulation (drop the last N bytes of
  a file, as a crash mid-write would).

The kill is an ``OSError`` so production code cannot accidentally
catch it as a domain error; tests assert ``pytest.raises(OSError)``
around the killed operation.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.live import checkpoint as checkpoint_module
from repro.live import emit as emit_module


class SimulatedKill(OSError):
    """The injected failure: the process 'died' at this step."""


def kill_call(monkeypatch, module, attr: str, *, nth: int = 1,
              message: str | None = None):
    """Make the ``nth`` call of ``module.attr`` raise, earlier calls
    passing through to the real implementation.

    Returns the counting wrapper; its ``.calls`` attribute holds the
    number of invocations seen (including the killed one), so tests
    can assert the seam was actually reached.
    """
    real = getattr(module, attr)
    text = message or f"killed at {attr} call #{nth}"

    def dying(*args, **kwargs):
        dying.calls += 1
        if dying.calls == nth:
            raise SimulatedKill(text)
        return real(*args, **kwargs)

    dying.calls = 0
    monkeypatch.setattr(module, attr, dying)
    return dying


def kill_method(monkeypatch, owner, method: str, *,
                message: str | None = None):
    """Kill inside a named method of a class (before it runs) — the
    catalog suite's object-level pattern."""
    text = message or f"killed in {owner.__name__}.{method}"

    def dying(self, *args, **kwargs):
        raise SimulatedKill(text)

    monkeypatch.setattr(owner, method, dying)


# -- checkpoint save kill points -------------------------------------------

#: The durability steps of one checkpoint save, in order.
CHECKPOINT_KILL_POINTS = ("temp_fsync", "replace", "dir_fsync")


def kill_checkpoint_at(monkeypatch, point: str) -> None:
    """Abort the next checkpoint save at one of its durability steps
    (see :data:`CHECKPOINT_KILL_POINTS`)."""
    if point == "temp_fsync":
        kill_call(monkeypatch, checkpoint_module.os, "fsync",
                  message="killed during temp fsync")
    elif point == "replace":
        kill_call(monkeypatch, checkpoint_module.os, "replace",
                  message="killed before replace")
    elif point == "dir_fsync":
        kill_call(monkeypatch, checkpoint_module, "_fsync_directory",
                  message="killed before directory fsync")
    else:  # pragma: no cover - harness misuse
        raise ValueError(f"unknown checkpoint kill point {point!r}")


# -- emit-journal compaction kill points -----------------------------------

#: The durability steps of one journal compaction, in order: the
#: ``.elog`` rewrite (tmp fsync → replace → dir fsync), then the
#: journal rewrite (same three). A kill at any of them must leave the
#: journal+elog pair replayable to the exact same record multiset.
COMPACTION_KILL_POINTS = (
    "elog_fsync", "elog_replace", "elog_dir_fsync",
    "journal_fsync", "journal_replace", "journal_dir_fsync")

_COMPACTION_SEAMS = {"fsync": "_fsync_handle", "replace": "_replace",
                     "dir_fsync": "_fsync_directory"}


def kill_compaction_at(monkeypatch, point: str) -> None:
    """Abort the next :meth:`EmitJournal.compact` at one durability
    step (see :data:`COMPACTION_KILL_POINTS`).

    Each seam fires once for the ``.elog`` and once for the journal,
    so the ``journal_*`` points kill the *second* call of their seam.
    Activate immediately before the operation under test — a
    ``sync()`` on the way in would consume fsync counts of its own
    (it uses ``os.fsync`` directly, not the seam, so it does not).
    """
    kind = point.removeprefix("elog_").removeprefix("journal_")
    seam = _COMPACTION_SEAMS.get(kind)
    if seam is None or point not in COMPACTION_KILL_POINTS:
        raise ValueError(f"unknown compaction kill point {point!r}")
    nth = 1 if point.startswith("elog_") else 2
    kill_call(monkeypatch, emit_module, seam, nth=nth,
              message=f"killed at compaction step {point}")


# -- torn writes -----------------------------------------------------------

def tear_tail(path: str | Path, n_bytes: int) -> int:
    """Drop the last ``n_bytes`` of a file (a crash mid-append); the
    file must stay non-negative in size. Returns the new size."""
    target = Path(path)
    size = target.stat().st_size
    keep = max(size - n_bytes, 0)
    with open(target, "r+b") as handle:
        handle.truncate(keep)
    return keep


# -- sink fakes ------------------------------------------------------------

class RecordingSink:
    """Collects delivered alerts (thread-safe: queue workers emit from
    a background thread)."""

    def __init__(self) -> None:
        self.alerts = []
        self._lock = threading.Lock()

    def emit(self, alert) -> None:
        with self._lock:
            self.alerts.append(alert)

    @property
    def n_emitted(self) -> int:
        with self._lock:
            return len(self.alerts)


class FailingSink:
    """Raises on every delivery — the dead-pager adversary."""

    def __init__(self, message: str = "sink is down") -> None:
        self.message = message
        self.attempts = 0

    def emit(self, alert) -> None:
        self.attempts += 1
        raise RuntimeError(self.message)


class FlakySink(RecordingSink):
    """Fails the first ``fail_first`` deliveries, then recovers."""

    def __init__(self, fail_first: int) -> None:
        super().__init__()
        self.fail_first = fail_first
        self.attempts = 0

    def emit(self, alert) -> None:
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise RuntimeError(
                f"flaky failure {self.attempts}/{self.fail_first}")
        super().emit(alert)


class SlowSink(RecordingSink):
    """Sleeps ``delay`` seconds per delivery — the latency adversary
    behind the poll-time-independence property."""

    def __init__(self, delay: float) -> None:
        super().__init__()
        self.delay = delay

    def emit(self, alert) -> None:
        time.sleep(self.delay)
        super().emit(alert)


class BlockingSink(RecordingSink):
    """Blocks every delivery until :attr:`release` is set — for
    asserting that submission does not wait on delivery. Always set
    ``release`` before draining/closing the engine, or the drain will
    block with the sink."""

    def __init__(self) -> None:
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()

    def emit(self, alert) -> None:
        self.entered.set()
        if not self.release.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("BlockingSink was never released")
        super().emit(alert)

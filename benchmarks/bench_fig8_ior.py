"""Fig. 8: IOR single-shared-file vs file-per-process at paper scale.

96 MPI ranks across 2 nodes, ``-t 1m -b 16m -s 3 -w -r -C -e``
(Fig. 7b), traced for openat/read/write variants. Reproduced and
checked:

- Fig. 8a — DFG over all events: $SCRATCH openat+write dominate the
  relative duration; preamble nodes ($SOFTWARE, $HOME, Node Local)
  exist with negligible load.
- Fig. 8b — $SCRATCH-only DFG, split by access path: SSF openat/write
  loads dwarf FPP's; FPP per-process write rate exceeds SSF's; SSF
  max-concurrency hits the rank count while FPP stays well below.

Absolute loads depend on the authors' GPFS testbed; orderings and
coarse ratios are asserted (DESIGN.md §5).
"""

import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import SiteVariables
from repro.core.statistics import IOStatistics
from repro.simulate.workloads.ior import JUWELS_SITE_VARIABLES

from conftest import PAPER_RANKS, paper_vs_measured


@pytest.fixture(scope="module")
def exp_a_log(ior_exp_a_dir):
    return EventLog.from_source(ior_exp_a_dir)


def test_fig8a_full_dfg(benchmark, exp_a_log):
    def synthesize():
        log = exp_a_log.with_mapping(SiteVariables(JUWELS_SITE_VARIABLES))
        return log, DFG(log), IOStatistics(log)

    log, dfg, stats = benchmark.pedantic(synthesize, rounds=3,
                                         iterations=1)
    rd = {a: stats[a].relative_duration for a in stats.activities()}
    paper_vs_measured("Fig. 8a — relative durations (all events)", [
        ("openat:$SCRATCH", "0.55", f"{rd['openat:$SCRATCH']:.2f}"),
        ("write:$SCRATCH", "0.43", f"{rd['write:$SCRATCH']:.2f}"),
        ("read:$SCRATCH", "0.02", f"{rd['read:$SCRATCH']:.2f}"),
        ("write:Node Local", "0.00",
         f"{rd['write:Node Local']:.2f}"),
        ("read:$SOFTWARE", "0.00", f"{rd['read:$SOFTWARE']:.2f}"),
    ])
    assert rd["openat:$SCRATCH"] + rd["write:$SCRATCH"] > 0.85
    assert rd["openat:$SCRATCH"] > rd["write:$SCRATCH"] > \
        rd["read:$SCRATCH"]
    for light in ("write:Node Local", "read:$SOFTWARE",
                  "openat:$SOFTWARE", "openat:$HOME",
                  "openat:Node Local"):
        assert rd[light] < 0.02, light
    # Structural counts (the figure's 192-edge backbone).
    assert dfg.node_frequency("openat:$SCRATCH") == 192
    assert dfg.node_frequency("write:$SCRATCH") == 9216
    assert dfg.node_frequency("read:$SCRATCH") == 9216
    assert dfg.edge_count("write:$SCRATCH", "write:$SCRATCH") == 9024


def test_fig8b_scratch_dfg(benchmark, exp_a_log):
    def synthesize():
        log = exp_a_log.filtered_fp("/p/scratch")
        log.apply_mapping_fn(
            SiteVariables(JUWELS_SITE_VARIABLES, extra_levels=1))
        return log, DFG(log), IOStatistics(log)

    log, dfg, stats = benchmark.pedantic(synthesize, rounds=3,
                                         iterations=1)

    def row(activity):
        s = stats[activity]
        rate = (f"{s.max_concurrency}x"
                f"{(s.process_data_rate or 0) / 1e6:.0f}"
                if s.process_data_rate else "-")
        return f"{s.relative_duration:.2f} / {rate}"

    paper_vs_measured("Fig. 8b — $SCRATCH only (rd / mc×MB/s)", [
        ("openat:$SCRATCH/ssf", "0.54 / -", row("openat:$SCRATCH/ssf")),
        ("write:$SCRATCH/ssf", "0.43 / 96x2780",
         row("write:$SCRATCH/ssf")),
        ("read:$SCRATCH/ssf", "0.01 / 96x4601",
         row("read:$SCRATCH/ssf")),
        ("openat:$SCRATCH/fpp", "0.01 / -", row("openat:$SCRATCH/fpp")),
        ("write:$SCRATCH/fpp", "0.00 / 29x3571",
         row("write:$SCRATCH/fpp")),
        ("read:$SCRATCH/fpp", "0.00 / 29x4465",
         row("read:$SCRATCH/fpp")),
    ])

    rd = {a: stats[a].relative_duration for a in stats.activities()}
    # Load orderings (the experiment's conclusion).
    assert rd["openat:$SCRATCH/ssf"] > rd["write:$SCRATCH/ssf"]
    assert rd["write:$SCRATCH/ssf"] > 5 * rd["read:$SCRATCH/ssf"]
    assert rd["openat:$SCRATCH/ssf"] > 10 * rd["openat:$SCRATCH/fpp"]
    assert rd["write:$SCRATCH/ssf"] > 10 * rd["write:$SCRATCH/fpp"]
    # Rates: FPP writes faster per process; reads comparable.
    ssf_w = stats["write:$SCRATCH/ssf"]
    fpp_w = stats["write:$SCRATCH/fpp"]
    assert fpp_w.process_data_rate > ssf_w.process_data_rate
    ratio = (stats["read:$SCRATCH/ssf"].process_data_rate
             / stats["read:$SCRATCH/fpp"].process_data_rate)
    assert 0.75 < ratio < 1.25
    # Concurrency: SSF pile-up reaches the rank count; FPP stays below.
    assert ssf_w.max_concurrency >= PAPER_RANKS - 2
    assert fpp_w.max_concurrency < PAPER_RANKS - 10
    # Volume: 4.83 GB each way per mode (96 × 3 × 16 MB).
    expected_bytes = PAPER_RANKS * 3 * (16 << 20)
    assert stats["write:$SCRATCH/ssf"].total_bytes == expected_bytes
    assert stats["read:$SCRATCH/fpp"].total_bytes == expected_bytes
    # Counts: one openat per rank and mode (Fig. 8b edges of 96).
    assert dfg.node_frequency("openat:$SCRATCH/ssf") == 96
    assert dfg.node_frequency("openat:$SCRATCH/fpp") == 96
    assert dfg.edge_count("write:$SCRATCH/ssf",
                          "write:$SCRATCH/ssf") == 4512

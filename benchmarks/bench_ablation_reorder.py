"""Ablation of IOR's ``-C`` (task reorder) option — the page-cache story.

The paper runs IOR with ``-C`` so "each rank reads the data written by
a process from the neighboring node (this is done to avoid reading the
data stored in the DRAM)" (Sec. V-A). This ablation runs the SSF
workload with and without ``-C`` and shows the consequence the option
exists to avoid: without reordering, reads are served from the local
page cache at memory speed, inflating the apparent read data rate and
collapsing the read phase — the benchmark would no longer measure the
storage system.
"""

import pytest

from repro.core.eventlog import EventLog
from repro.core.mapping import SiteVariables
from repro.core.statistics import IOStatistics
from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import (
    IORConfig,
    JUWELS_SITE_VARIABLES,
    simulate_ior,
)

from conftest import paper_vs_measured

RANKS = 32
RPN = 16


def _read_stats(tmp_path, *, reorder: bool, label: str):
    result = simulate_ior(IORConfig(
        ranks=RANKS, ranks_per_node=RPN, segments=2, cid=label,
        reorder_tasks=reorder, test_file=f"/p/scratch/{label}/test",
        seed=33 if reorder else 44))
    directory = tmp_path / label
    write_trace_files(result.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS)
    log = EventLog.from_source(directory)
    log.apply_fp_filter("/p/scratch")
    log.apply_mapping_fn(SiteVariables(JUWELS_SITE_VARIABLES,
                                       extra_levels=1))
    stats = IOStatistics(log)
    return stats[f"read:$SCRATCH/{label}"]


def test_reorder_defeats_page_cache(benchmark, tmp_path):
    def run_both():
        with_c = _read_stats(tmp_path, reorder=True, label="withc")
        without_c = _read_stats(tmp_path, reorder=False, label="noc")
        return with_c, without_c

    with_c, without_c = benchmark.pedantic(run_both, rounds=1,
                                           iterations=1)
    paper_vs_measured("Ablation — IOR -C (read path)", [
        ("read rate with -C (storage)", "≈ storage bandwidth",
         f"{with_c.process_data_rate / 1e6:.0f} MB/s"),
        ("read rate without -C (cache)", "≫ storage (DRAM)",
         f"{without_c.process_data_rate / 1e6:.0f} MB/s"),
        ("speedup from cache", "why the paper uses -C",
         f"{without_c.process_data_rate / with_c.process_data_rate:.1f}x"),
    ])
    # Without -C, reads come from the local page cache: much faster.
    assert without_c.process_data_rate > 1.4 * with_c.process_data_rate
    # Total read time correspondingly collapses.
    assert without_c.total_dur_us < with_c.total_dur_us
    # Same bytes either way.
    assert without_c.total_bytes == with_c.total_bytes

"""The complexity claims of Sec. V ("Implementation").

The paper states: mapping application is O(n); DFG construction is a
single O(n) pass over the activity-log; statistics are O(mn); rendering
is O(m²) worst case (complete graph). This bench measures those stages
across a size sweep of synthetic event-logs and asserts near-linear
growth for the O(n) stages (time ratio within 3× of the size ratio —
generous to absorb allocator noise).
"""

import time

import numpy as np
import pytest

from repro.core.activity import ActivityLog, START_ACTIVITY, END_ACTIVITY
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.frame import EventFrame, FramePools
from repro.core.mapping import CallTopDirs
from repro.core.render.dot import render_dot
from repro.core.statistics import IOStatistics

from conftest import paper_vs_measured


def synthetic_log(n_events: int, n_activities: int = 24,
                  n_cases: int = 8, seed: int = 1) -> EventLog:
    """A synthetic event-log with n events over m distinct paths."""
    rng = np.random.default_rng(seed)
    pools = FramePools()
    paths = [f"/data/dir{i % 6}/file{i}" for i in range(n_activities)]
    path_codes = np.array([pools.paths.intern(p) for p in paths],
                          dtype=np.int32)
    call_code = pools.calls.intern("read")
    case_codes = np.array(
        [pools.cases.intern(f"s{i}") for i in range(n_cases)],
        dtype=np.int32)
    cid_code = pools.cids.intern("s")
    host_code = pools.hosts.intern("h")

    case = np.repeat(case_codes, n_events // n_cases)
    case = np.resize(case, n_events)
    start = np.sort(rng.integers(0, 10**9, size=n_events)) \
        .astype(np.int64)
    columns = {
        "case": case,
        "cid": np.full(n_events, cid_code, dtype=np.int32),
        "host": np.full(n_events, host_code, dtype=np.int32),
        "rid": case.astype(np.int64),
        "pid": case.astype(np.int64) + 1000,
        "call": np.full(n_events, call_code, dtype=np.int32),
        "start": start,
        "dur": rng.integers(1, 1000, size=n_events).astype(np.int64),
        "fp": path_codes[rng.integers(0, n_activities, size=n_events)],
        "size": rng.integers(0, 1 << 20, size=n_events).astype(np.int64),
        "activity": np.full(n_events, -1, dtype=np.int32),
    }
    return EventLog(EventFrame(pools, columns))


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


SIZES = (20_000, 80_000)


def test_mapping_application_linear(benchmark):
    """Step 2 of Fig. 6 is O(n)."""
    logs = {n: synthetic_log(n) for n in SIZES}
    small = min(_timed(lambda: logs[SIZES[0]].with_mapping(
        CallTopDirs())) for _ in range(3))
    large = min(_timed(lambda: logs[SIZES[1]].with_mapping(
        CallTopDirs())) for _ in range(3))
    ratio = large / small
    size_ratio = SIZES[1] / SIZES[0]
    paper_vs_measured("Sec. V — mapping is O(n)", [
        (f"time ratio for {size_ratio:.0f}x events",
         f"≈{size_ratio:.0f}", f"{ratio:.1f}")])
    assert ratio < 3 * size_ratio
    benchmark(lambda: logs[SIZES[0]].with_mapping(CallTopDirs()))


def test_dfg_construction_linear(benchmark):
    """Step 3 of Fig. 6 is a single O(n) pass."""
    logs = {n: synthetic_log(n).with_mapping(CallTopDirs())
            for n in SIZES}
    small = min(_timed(lambda: DFG(logs[SIZES[0]])) for _ in range(3))
    large = min(_timed(lambda: DFG(logs[SIZES[1]])) for _ in range(3))
    ratio = large / small
    size_ratio = SIZES[1] / SIZES[0]
    paper_vs_measured("Sec. V — DFG build is O(n)", [
        (f"time ratio for {size_ratio:.0f}x events",
         f"≈{size_ratio:.0f}", f"{ratio:.1f}")])
    assert ratio < 3 * size_ratio
    benchmark(lambda: DFG(logs[SIZES[0]]))


def test_statistics_pass_linear_in_n(benchmark):
    """Step 4 of Fig. 6 is O(mn); for fixed m it must scale with n."""
    logs = {n: synthetic_log(n).with_mapping(CallTopDirs())
            for n in SIZES}
    small = min(_timed(lambda: IOStatistics(logs[SIZES[0]]))
                for _ in range(3))
    large = min(_timed(lambda: IOStatistics(logs[SIZES[1]]))
                for _ in range(3))
    ratio = large / small
    size_ratio = SIZES[1] / SIZES[0]
    paper_vs_measured("Sec. V — statistics are O(mn), fixed m", [
        (f"time ratio for {size_ratio:.0f}x events",
         f"≈{size_ratio:.0f}", f"{ratio:.1f}")])
    assert ratio < 3 * size_ratio
    benchmark(lambda: IOStatistics(logs[SIZES[0]]))


def test_render_quadratic_in_m(benchmark):
    """Sec. V: rendering is O(m²) worst case — a complete DFG on m
    activities has m² edges; DOT emission must scale with edges."""
    def complete_dfg(m: int) -> DFG:
        edges = {(f"a{i}", f"a{j}"): 1
                 for i in range(m) for j in range(m)}
        return DFG.from_counts(edges)

    small_m, large_m = 20, 40
    small = min(_timed(lambda: render_dot(complete_dfg(small_m)))
                for _ in range(3))
    large = min(_timed(lambda: render_dot(complete_dfg(large_m)))
                for _ in range(3))
    ratio = large / small
    edge_ratio = (large_m / small_m) ** 2
    paper_vs_measured("Sec. V — render is O(m²) worst case", [
        (f"time ratio for {large_m}/{small_m} nodes",
         f"≈{edge_ratio:.0f} (m² edges)", f"{ratio:.1f}")])
    assert ratio < 3 * edge_ratio
    dfg = complete_dfg(small_m)
    benchmark(render_dot, dfg)

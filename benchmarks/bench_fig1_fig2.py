"""Fig. 1 (trace-file generation/naming) and Fig. 2 (parsing).

Fig. 1 pins the tracing setup: three MPI processes per command, one
trace file each, named ``<cid>_<host>_<rid>.st``. Fig. 2 pins the
record format; the bench measures parse throughput on paper-scale IOR
trace directories (96 ranks × two runs ≈ 28 k records) and checks the
preprocessing rules of Sec. III (merge, ERESTARTSYS, sorting).
"""

from pathlib import Path

import pytest

from repro.simulate.workloads.ls import generate_fig1_traces
from repro.strace.naming import parse_trace_filename
from repro.strace.reader import read_trace_dir, read_trace_file

from conftest import paper_vs_measured


def test_fig1_trace_generation(benchmark, tmp_path):
    """Regenerate the six Fig. 1 trace files; check the naming grammar."""
    counter = [0]

    def generate():
        out = tmp_path / f"run{counter[0]}"
        counter[0] += 1
        return generate_fig1_traces(out)

    ls_paths, ls_l_paths = benchmark(generate)
    assert [p.name for p in ls_paths] == [
        "a_host1_9042.st", "a_host1_9043.st", "a_host1_9045.st"]
    assert [p.name for p in ls_l_paths] == [
        "b_host1_9157.st", "b_host1_9158.st", "b_host1_9160.st"]
    for path in ls_paths + ls_l_paths:
        name = parse_trace_filename(path.name)
        assert name.host == "host1"
    paper_vs_measured("Fig. 1 — trace files per command", [
        ("files for ls", "3", str(len(ls_paths))),
        ("files for ls -l", "3", str(len(ls_l_paths))),
    ])


def test_fig2_single_file_parse(benchmark, ls_trace_dir):
    """Parse the Fig. 2a trace: 8 records with the documented fields."""
    path = ls_trace_dir / "a_host1_9042.st"
    case = benchmark(read_trace_file, path)
    assert len(case) == 8
    first = case.records[0]
    assert first.call == "read"
    assert first.fp.endswith("libselinux.so.1")
    assert first.size == 832
    assert first.requested == 832


def test_fig2_parse_throughput_paper_scale(benchmark, ior_exp_a_dir):
    """Parse the full 192-file experiment-A directory."""
    cases = benchmark.pedantic(
        read_trace_dir, args=(ior_exp_a_dir,), rounds=3, iterations=1)
    n_records = sum(len(c) for c in cases)
    assert len(cases) == 192
    assert n_records > 20_000
    paper_vs_measured("Fig. 2 — experiment-A trace volume", [
        ("trace files", "192", str(len(cases))),
        ("records", "~28k (96 ranks × 2 runs)", str(n_records)),
    ])


def test_fig2c_unfinished_merge(benchmark, tmp_path):
    """The Fig. 2c split-record form parses into one merged record."""
    text = (
        "77423  16:56:40.452431 read(3</usr/lib/x86_64-linux-gnu/"
        "libselinux.so.1>, <unfinished ...>\n"
        "77423  16:56:40.452660 <... read resumed> ..., 405) = 404 "
        "<0.000223>\n")
    path = tmp_path / "c_host1_77423.st"
    path.write_text(text * 500)  # 500 interleaved pairs

    def parse():
        return read_trace_file(path)

    case = benchmark(parse)
    assert len(case) == 500
    assert case.merge_stats.merged_pairs == 500
    assert all(r.size == 404 for r in case.records)

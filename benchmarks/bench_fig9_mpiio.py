"""Fig. 9: IOR with vs without the MPI-IO interface (partition DFG).

Both runs in SSF mode at paper scale, traced with lseek included
(experiment B). Reproduced and checked:

- MPI-IO replaces read/write with pread64/pwrite64 (green-exclusive
  nodes) while the POSIX run keeps read/write (red-exclusive);
- lseek:$SCRATCH is a shared node whose count is dominated by the
  POSIX run (one seek per transfer) with only a per-rank probe from
  the MPI-IO run;
- the syscall-count reduction lowers the MPI-IO run's relative load
  (paper: pwrite64 0.21 vs write 0.31).
"""

import pytest

from repro.core.coloring import PartitionColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import SiteVariables
from repro.core.partition import PartitionEL
from repro.core.statistics import IOStatistics
from repro.simulate.workloads.ior import JUWELS_SITE_VARIABLES

from conftest import PAPER_RANKS, paper_vs_measured

#: transfers per rank: 3 segments × 16 transfers.
TRANSFERS = 3 * 16


@pytest.fixture(scope="module")
def exp_b_log(ior_exp_b_dir):
    log = EventLog.from_source(ior_exp_b_dir)
    # The paper skips rendering openat calls in Fig. 9.
    log = log.filtered(~log.frame.call_in(["openat", "open"]))
    log.apply_mapping_fn(SiteVariables(JUWELS_SITE_VARIABLES))
    return log


def test_fig9_partition_coloring(benchmark, exp_b_log):
    def synthesize():
        green_log, red_log = PartitionEL(exp_b_log, ["mpiio"])
        coloring = PartitionColoring(DFG(green_log), DFG(red_log),
                                     IOStatistics(exp_b_log))
        return green_log, red_log, coloring

    green_log, red_log, coloring = benchmark.pedantic(
        synthesize, rounds=3, iterations=1)
    summary = coloring.summary()
    stats = coloring.stats

    green_lseeks = int(green_log.frame.call_in(["lseek"]).sum())
    red_scratch_lseeks = int(
        (red_log.frame.call_in(["lseek"])
         & red_log.frame.fp_contains("/p/scratch")).sum())
    rd = {a: stats[a].relative_duration for a in stats.activities()}

    paper_vs_measured("Fig. 9 — MPI-IO (green) vs POSIX (red)", [
        ("green-exclusive nodes", "pread64, pwrite64 ($SCRATCH)",
         ", ".join(n.split(":")[0] for n in summary["green_nodes"])),
        ("red-exclusive $SCRATCH nodes", "read, write",
         ", ".join(sorted(n.split(":")[0]
                          for n in summary["red_nodes"]
                          if "$SCRATCH" in n))),
        ("lseek:$SCRATCH (POSIX)", "9216 (2×96×48)",
         str(red_scratch_lseeks)),
        ("rd(pwrite64) vs rd(write)", "0.21 < 0.31",
         f"{rd['pwrite64:$SCRATCH']:.2f} < {rd['write:$SCRATCH']:.2f}"),
        ("rd(pread64) vs rd(read)", "0.21 ≤ 0.25",
         f"{rd['pread64:$SCRATCH']:.2f} ≤ {rd['read:$SCRATCH']:.2f}"),
    ])

    # Exclusivity (the paper's core observation).
    assert summary["green_nodes"] == ["pread64:$SCRATCH",
                                      "pwrite64:$SCRATCH"]
    assert {"read:$SCRATCH", "write:$SCRATCH"} <= \
        set(summary["red_nodes"])
    assert "lseek:$SCRATCH" in summary["shared_nodes"]
    # lseek volume: POSIX seeks before every one of 2×48 transfers per
    # rank; MPI-IO probes once per rank.
    assert red_scratch_lseeks == 2 * TRANSFERS * PAPER_RANKS
    assert green_lseeks < red_scratch_lseeks / 5
    # Load reduction with MPI-IO.
    assert rd["pwrite64:$SCRATCH"] < rd["write:$SCRATCH"]
    # Exclusive edges: seek→transfer chains exist only in POSIX.
    assert coloring.classify_edge(
        ("lseek:$SCRATCH", "write:$SCRATCH")) == "red"
    assert coloring.classify_edge(
        ("lseek:$SCRATCH", "pwrite64:$SCRATCH")) == "green"


def test_fig9_render_dot(benchmark, exp_b_log):
    green_log, red_log = PartitionEL(exp_b_log, ["mpiio"])
    stats = IOStatistics(exp_b_log)
    coloring = PartitionColoring(DFG(green_log), DFG(red_log), stats)
    dfg = DFG(exp_b_log)

    from repro.core.render.dot import render_dot

    text = benchmark(render_dot, dfg, stats, coloring)
    assert "pwrite64" in text
    assert text.count("->") == dfg.n_edges

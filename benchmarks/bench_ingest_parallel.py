"""Sequential vs parallel ingestion throughput (repro.ingest).

Each simulate workload is written as a ≥100-file trace directory and
ingested end-to-end (``EventLog.from_source``) sequentially
(``workers=1``) and on a process pool (``workers=4`` by default). The
bench reports events/s and the speedup, and *always* verifies the two
paths produce the same DFG — throughput without equivalence is not a
result.

The ≥2× speedup criterion is asserted when the machine actually has
≥ 4 usable CPUs; on smaller hosts (CI sandboxes) the numbers are still
printed but the assertion is skipped — a process pool cannot beat the
GIL-free sequential path without physical parallelism.

The statistics pass is benchmarked too: ``IOStatistics`` builds the
Eq. 15 per-activity timelines columnally (case codes decoded once per
chunk, ends computed vectorized); a row-wise reference replicating the
pre-vectorization per-event Python loop is timed against it — and
checked for identical output — to keep the module's "Python-level cost
is O(m), not O(mn)" claim honest.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_ingest_parallel.py
    PYTHONPATH=src python benchmarks/bench_ingest_parallel.py --workers 8

or through pytest (excluded from tier-1; the files are bench_*.py)::

    PYTHONPATH=src python -m pytest benchmarks/bench_ingest_parallel.py -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.ingest.parallel import available_cpus

from conftest import paper_vs_measured

#: Workload name → builder writing a ≥100-file trace directory.
WORKLOAD_BUILDERS = {}
#: Workloads with enough per-file parse work that the ≥2× criterion is
#: asserted (the tiny-file ``ls`` dir measures fan-out overhead only).
ASSERTED_WORKLOADS = frozenset({"ior", "checkpoint"})


def _workload(fn):
    WORKLOAD_BUILDERS[fn.__name__] = fn
    return fn


@_workload
def ior(directory: Path) -> int:
    """104 ranks of the paper's experiment-A IOR run: one mid-sized
    trace file per rank."""
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    result = simulate_ior(IORConfig(
        ranks=104, ranks_per_node=52, segments=2, cid="ior", seed=4242))
    return len(write_trace_files(result.recorders, directory,
                                 trace_calls=EXPERIMENT_A_CALLS,
                                 unfinished_probability=0.1, seed=7))


@_workload
def checkpoint(directory: Path) -> int:
    """100 ranks × 5 checkpoint steps with restart reads."""
    from repro.simulate.strace_writer import write_trace_files
    from repro.simulate.workloads.checkpoint import (
        CheckpointConfig,
        simulate_checkpoint,
    )

    result = simulate_checkpoint(CheckpointConfig(
        ranks=100, ranks_per_node=50, steps=5, shard_bytes=8 << 20,
        transfer_bytes=1 << 20, seed=303))
    return len(write_trace_files(result.recorders, directory,
                                 unfinished_probability=0.1, seed=7))


@_workload
def ls(directory: Path) -> int:
    """100 tiny ls/ls -l traces: stresses per-file fan-out overhead
    rather than parse volume."""
    from repro._util.timefmt import parse_wallclock
    from repro.simulate.strace_writer import write_trace_files
    from repro.simulate.workloads.ls import LsConfig, simulate_ls

    n = 0
    n += len(write_trace_files(simulate_ls(LsConfig(
        rids=tuple(range(9000, 9050)))), directory))
    n += len(write_trace_files(simulate_ls(LsConfig(
        cid="b", long_format=True, rids=tuple(range(9500, 9550)),
        pid_offset=16,
        start_wallclock_us=parse_wallclock("08:56:04.731999"))),
        directory))
    return n


def _time_ingest(directory: Path, workers: int, repeats: int = 2):
    """Best-of-N wall time and the resulting log."""
    best, log = float("inf"), None
    for _ in range(repeats):
        begin = time.perf_counter()
        log = EventLog.from_source(directory, workers=workers)
        best = min(best, time.perf_counter() - begin)
    return best, log


def _rowwise_timelines(frame) -> dict[str, list[tuple[str, int, int]]]:
    """The pre-vectorization timeline build: one Python iteration per
    event, decoding the case code row by row (the O(mn)-in-Python
    reference the columnar pass is measured against)."""
    from repro.core.frame import MISSING

    pools = frame.pools
    start = frame.column("start")
    dur = frame.column("dur")
    case = frame.column("case")
    timelines: dict[str, list[tuple[str, int, int]]] = {}
    for code, rows in frame.groupby_activity():
        case_pool = pools.cases
        timelines[pools.activities.decode(code)] = [
            (case_pool.decode(int(case[r])), int(start[r]),
             int(start[r]) + (int(dur[r]) if dur[r] != MISSING else 0))
            for r in rows
        ]
    return timelines


def _columnar_timelines(frame) -> dict[str, list[tuple[str, int, int]]]:
    """The vectorized timeline build of the statistics pass: ends
    computed columnally, case codes decoded once per contiguous
    chunk, rows materialized with C-level ``zip``."""
    import numpy as np

    from repro.core.frame import MISSING

    pools = frame.pools
    start = frame.column("start")
    dur = frame.column("dur")
    case = frame.column("case")
    timelines: dict[str, list[tuple[str, int, int]]] = {}
    for code, rows in frame.groupby_activity():
        starts = start[rows]
        durs = dur[rows]
        ends = starts + np.where(durs != MISSING, durs, 0)
        case_codes = case[rows]
        bounds = np.flatnonzero(np.diff(case_codes)) + 1
        edges = [0, *bounds.tolist(), len(rows)]
        timeline: list[tuple[str, int, int]] = []
        for lo, hi in zip(edges, edges[1:]):
            case_id = pools.cases.decode(int(case_codes[lo]))
            timeline.extend(
                (case_id, s, e)
                for s, e in zip(starts[lo:hi].tolist(),
                                ends[lo:hi].tolist()))
        timelines[pools.activities.decode(code)] = timeline
    return timelines


def _time_statistics(log: EventLog, repeats: int = 2) -> dict:
    """Full vectorized IOStatistics, plus the timeline build measured
    both ways (columnar vs the row-wise loop it replaced)."""
    from repro.core.statistics import IOStatistics

    mapped = log.with_mapping(CallTopDirs(levels=2))
    full_time = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        IOStatistics(mapped)
        full_time = min(full_time, time.perf_counter() - begin)
    vec_time, columnar = float("inf"), None
    for _ in range(repeats):
        begin = time.perf_counter()
        columnar = _columnar_timelines(mapped.frame)
        vec_time = min(vec_time, time.perf_counter() - begin)
    row_time, reference = float("inf"), None
    for _ in range(repeats):
        begin = time.perf_counter()
        reference = _rowwise_timelines(mapped.frame)
        row_time = min(row_time, time.perf_counter() - begin)
    assert columnar == reference, "vectorized timelines diverged"
    return {"stats_full_s": full_time, "timeline_vec_s": vec_time,
            "timeline_rowwise_s": row_time,
            "timeline_speedup": row_time / vec_time}


def run_workload(name: str, directory: Path, *, workers: int = 4,
                 repeats: int = 2) -> dict:
    n_files = WORKLOAD_BUILDERS[name](directory)
    assert n_files >= 100, f"{name}: benchmark needs >=100 files"
    seq_time, seq_log = _time_ingest(directory, 1, repeats)
    par_time, par_log = _time_ingest(directory, workers, repeats)
    mapping = CallTopDirs(levels=2)
    assert DFG(seq_log.with_mapping(mapping)) == \
        DFG(par_log.with_mapping(mapping)), \
        f"{name}: parallel ingestion diverged from sequential"
    events = seq_log.n_events
    return {
        "workload": name,
        "files": n_files,
        "events": events,
        "seq_s": seq_time,
        "par_s": par_time,
        "seq_eps": events / seq_time,
        "par_eps": events / par_time,
        "speedup": seq_time / par_time,
        **_time_statistics(seq_log, repeats),
    }


def report(result: dict, workers: int) -> None:
    paper_vs_measured(
        f"ingest {result['workload']} ({result['files']} files, "
        f"{result['events']} events, {available_cpus()} CPUs)",
        [
            ("sequential", "baseline",
             f"{result['seq_s'] * 1e3:.0f} ms "
             f"({result['seq_eps']:,.0f} ev/s)"),
            (f"workers={workers}", ">= 2x on >=4 CPUs",
             f"{result['par_s'] * 1e3:.0f} ms "
             f"({result['par_eps']:,.0f} ev/s)"),
            ("speedup", ">= 2.00", f"{result['speedup']:.2f}x"),
            ("full statistics pass", "O(m + cases) Python",
             f"{result['stats_full_s'] * 1e3:.1f} ms"),
            ("timelines row-wise (ref)", "O(mn) Python",
             f"{result['timeline_rowwise_s'] * 1e3:.1f} ms"),
            ("timelines columnar", "faster, same output",
             f"{result['timeline_vec_s'] * 1e3:.1f} ms "
             f"({result['timeline_speedup']:.1f}x)"),
        ])


@pytest.fixture(params=sorted(WORKLOAD_BUILDERS))
def workload_name(request):
    return request.param


@pytest.mark.bench
def test_parallel_ingest_throughput(workload_name, tmp_path):
    workers = 4
    result = run_workload(workload_name, tmp_path, workers=workers)
    report(result, workers)
    if available_cpus() >= workers and \
            workload_name in ASSERTED_WORKLOADS:
        assert result["speedup"] >= 2.0, (
            f"{workload_name}: expected >= 2x at workers={workers}, "
            f"got {result['speedup']:.2f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--keep-dir", default=None,
                        help="build trace dirs here and keep them")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the raw results (one entry per workload) as "
             "a JSON document to PATH (e.g. BENCH_ingest.json) for "
             "machine consumption")
    args = parser.parse_args(argv)

    import tempfile

    results = []
    for name in sorted(WORKLOAD_BUILDERS):
        if args.keep_dir:
            directory = Path(args.keep_dir) / name
            directory.mkdir(parents=True, exist_ok=True)
            result = run_workload(name, directory, workers=args.workers,
                                  repeats=args.repeats)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                result = run_workload(name, Path(tmp),
                                      workers=args.workers,
                                      repeats=args.repeats)
        report(result, args.workers)
        results.append(result)
    if args.json is not None:
        args.json.write_text(json.dumps({
            "bench": "ingest_parallel",
            "params": {"workers": args.workers,
                       "repeats": args.repeats,
                       "cpus": available_cpus()},
            "results": results,
        }, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

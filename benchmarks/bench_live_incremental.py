"""Incremental live ingestion vs full re-ingest on a growing directory.

The scenario the live subsystem exists for: a trace directory fills up
over time (here, ``POLLS`` rounds of ``FILES_PER_POLL`` new files
each — one IOR rank's trace per file) and an observer wants the
current DFG after every round. Two strategies:

- **full re-ingest** — batch-parse the whole directory from scratch at
  every round (what the tooling forced before ``repro.live``): cost of
  round *k* grows with the *total* bytes, O(k · file);
- **incremental** — one :class:`~repro.live.engine.LiveIngest` polls
  the directory and folds only the delta: cost of round *k* is the
  *new* bytes, O(file).

The bench times both, asserts the incremental DFG equals the batch one
*after every round* (equivalence first, throughput second), and
reports the totals: summed over n rounds the full-re-ingest strategy
does O(n²/2) file-parses against the incremental O(n), so the expected
advantage at 10 rounds is ~5x and grows linearly with the horizon.

The same comparison is made for the *render path*: per refresh, the
watch display needs the Sec. IV-B statistics of the standing graph.
``engine.statistics()`` assembles them from the seal-time accumulators
at O(delta); the pre-accumulator strategy rebuilt the snapshot log and
recomputed ``IOStatistics`` at O(total events) per refresh. Both are
timed every round and asserted field-identical (floats included).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_live_incremental.py
    PYTHONPATH=src python benchmarks/bench_live_incremental.py --polls 20

or through pytest (excluded from tier-1; the files are bench_*.py)::

    PYTHONPATH=src python -m pytest benchmarks/bench_live_incremental.py -s
"""

from __future__ import annotations

import argparse
import itertools
import json
import shutil
import time
from pathlib import Path

import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.statistics import IOStatistics
from repro.live.engine import LiveIngest

from conftest import paper_vs_measured

#: Directory growth schedule: POLLS rounds x FILES_PER_POLL new files.
POLLS = 10
FILES_PER_POLL = 10

MAPPING = CallTopDirs(levels=2)


def build_source(directory: Path, *, polls: int,
                 files_per_poll: int) -> list[Path]:
    """Simulate one IOR rank per eventual file; returns sorted paths."""
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    ranks = polls * files_per_poll
    result = simulate_ior(IORConfig(
        ranks=ranks, ranks_per_node=files_per_poll, segments=2,
        cid="ior", seed=4242))
    return sorted(write_trace_files(
        result.recorders, directory, trace_calls=EXPERIMENT_A_CALLS,
        unfinished_probability=0.1, seed=7))


def run_growth(source_files: list[Path], live_dir: Path, *,
               polls: int, files_per_poll: int) -> dict:
    """Replay the growth schedule, timing both strategies per round."""
    engine = LiveIngest(live_dir, mapping=MAPPING)
    incremental_s = 0.0
    full_s = 0.0
    stats_inc_s = 0.0
    stats_full_s = 0.0
    batch_dfg = None
    for round_index in range(polls):
        batch = source_files[round_index * files_per_poll:
                             (round_index + 1) * files_per_poll]
        for path in batch:
            shutil.copy(path, live_dir / path.name)

        begin = time.perf_counter()
        engine.poll()
        live_dfg = engine.snapshot_dfg()
        incremental_s += time.perf_counter() - begin

        # Render path, new: statistics assembled from the seal-time
        # accumulators — O(delta events) per refresh.
        begin = time.perf_counter()
        live_stats = engine.statistics()
        stats_inc_s += time.perf_counter() - begin

        # Render path, old: rebuild the snapshot log and recompute
        # IOStatistics from scratch — O(total events) per refresh.
        begin = time.perf_counter()
        rebuilt = IOStatistics(
            engine.snapshot_log().with_mapping(MAPPING))
        stats_full_s += time.perf_counter() - begin

        for activity in rebuilt.activities():
            assert live_stats[activity] == rebuilt[activity], (
                f"round {round_index + 1}: incremental statistics "
                f"diverged on {activity!r}")

        begin = time.perf_counter()
        log = EventLog.from_source(live_dir, workers=1)
        batch_dfg = DFG(log.with_mapping(MAPPING))
        full_s += time.perf_counter() - begin

        assert live_dfg == batch_dfg, (
            f"round {round_index + 1}: incremental DFG diverged "
            f"from full re-ingest")
    return {
        "polls": polls,
        "files": polls * files_per_poll,
        "events": engine.total_events,
        "edges": batch_dfg.n_edges,
        "incremental_s": incremental_s,
        "full_s": full_s,
        "advantage": full_s / incremental_s,
        "stats_inc_s": stats_inc_s,
        "stats_full_s": stats_full_s,
        "stats_advantage": stats_full_s / stats_inc_s,
    }


#: Fresh-engine repetitions per arm of the overhead comparison; the
#: minimum over repeats filters scheduler noise out of a ms-scale loop.
OVERHEAD_REPEATS = 5

#: Absolute slack (seconds) added to the overhead guard so that clock
#: resolution on a near-zero baseline cannot fail a healthy build.
OVERHEAD_SLACK_S = 0.005

_overhead_run = itertools.count()


def measure_telemetry_overhead(source_files: list[Path], work_dir: Path,
                               *, polls: int, files_per_poll: int,
                               repeats: int = OVERHEAD_REPEATS) -> dict:
    """Time the poll loop with telemetry off vs on, best-of-``repeats``.

    Each run gets a fresh directory and a fresh engine so neither arm
    benefits from warm page caches of the other's files; only the
    ``engine.poll()`` calls are timed (copying the source files in is
    setup, not pipeline work). The ratio bounds the cost of the span
    and counter bookkeeping that ``--metrics-port``/``--metrics-log``
    switch on — the docs promise it stays within 5%.
    """
    from repro.telemetry import Telemetry

    def timed_loop(telemetry) -> float:
        live = work_dir / f"overhead-{next(_overhead_run)}"
        live.mkdir()
        engine = LiveIngest(live, mapping=MAPPING, telemetry=telemetry)
        total = 0.0
        for round_index in range(polls):
            batch = source_files[round_index * files_per_poll:
                                 (round_index + 1) * files_per_poll]
            for path in batch:
                shutil.copy(path, live / path.name)
            begin = time.perf_counter()
            engine.poll()
            total += time.perf_counter() - begin
        return total

    off_s = min(timed_loop(None) for _ in range(repeats))
    on_s = min(timed_loop(Telemetry()) for _ in range(repeats))
    return {
        "off_s": off_s,
        "on_s": on_s,
        "overhead": on_s / off_s - 1.0,
        "repeats": repeats,
    }


def report(result: dict) -> None:
    paper_vs_measured(
        f"live growth: {result['polls']} polls x "
        f"{result['files'] // result['polls']} files "
        f"({result['events']} events, {result['edges']} edges)",
        [
            ("full re-ingest / round", "O(total so far)",
             f"{result['full_s'] * 1e3:.0f} ms total"),
            ("incremental poll", "O(delta)",
             f"{result['incremental_s'] * 1e3:.0f} ms total"),
            ("advantage", f"~{result['polls'] / 2:.0f}x "
                          f"(n/2 at n rounds)",
             f"{result['advantage']:.2f}x"),
            ("stats rebuild / refresh", "O(total events)",
             f"{result['stats_full_s'] * 1e3:.0f} ms total"),
            ("incremental statistics", "O(delta)",
             f"{result['stats_inc_s'] * 1e3:.0f} ms total"),
            ("render advantage", "grows with the horizon",
             f"{result['stats_advantage']:.2f}x"),
        ])


@pytest.mark.bench
def test_incremental_beats_full_reingest(tmp_path):
    source = tmp_path / "source"
    live = tmp_path / "live"
    source.mkdir()
    live.mkdir()
    files = build_source(source, polls=POLLS,
                         files_per_poll=FILES_PER_POLL)
    result = run_growth(files, live, polls=POLLS,
                        files_per_poll=FILES_PER_POLL)
    report(result)
    # Equivalence is asserted per round inside run_growth; the
    # throughput claims are conservative (theory says ~POLLS/2).
    assert result["advantage"] >= 2.0, (
        f"incremental polling should amortize far below repeated "
        f"re-ingest, got {result['advantage']:.2f}x")
    assert result["stats_advantage"] >= 2.0, (
        f"the O(delta) statistics render path should amortize far "
        f"below per-refresh recomputation, got "
        f"{result['stats_advantage']:.2f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--polls", type=int, default=POLLS)
    parser.add_argument("--files-per-poll", type=int,
                        default=FILES_PER_POLL)
    parser.add_argument(
        "--min-advantage", type=float, default=None, metavar="X",
        help="fail (exit 1) unless both the incremental-poll and the "
             "statistics-render advantage reach X — the CI smoke "
             "guard against either path regressing to O(total)")
    parser.add_argument(
        "--max-telemetry-overhead", type=float, default=None,
        metavar="X",
        help="also time the poll loop with telemetry on vs off and "
             "fail (exit 1) when the instrumented loop exceeds the "
             "uninstrumented one by more than the fraction X (plus "
             f"{OVERHEAD_SLACK_S * 1e3:.0f} ms absolute slack for "
             "clock resolution)")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the raw results as a JSON document to PATH "
             "(e.g. BENCH_live.json) for machine consumption")
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        source = Path(tmp) / "source"
        live = Path(tmp) / "live"
        source.mkdir()
        live.mkdir()
        files = build_source(source, polls=args.polls,
                             files_per_poll=args.files_per_poll)
        result = run_growth(files, live, polls=args.polls,
                            files_per_poll=args.files_per_poll)
        if args.max_telemetry_overhead is not None:
            result["telemetry"] = measure_telemetry_overhead(
                files, Path(tmp), polls=args.polls,
                files_per_poll=args.files_per_poll)
    report(result)
    if "telemetry" in result:
        overhead = result["telemetry"]
        print(f"telemetry overhead: poll loop "
              f"{overhead['off_s'] * 1e3:.1f} ms off -> "
              f"{overhead['on_s'] * 1e3:.1f} ms on "
              f"({overhead['overhead'] * 100:+.1f}%, best of "
              f"{overhead['repeats']})")
    if args.json is not None:
        args.json.write_text(json.dumps({
            "bench": "live_incremental",
            "params": {"polls": args.polls,
                       "files_per_poll": args.files_per_poll},
            "results": result,
        }, indent=2) + "\n")
        print(f"wrote {args.json}")
    failures = []
    if args.min_advantage is not None:
        failures += [
            f"{name} advantage {value:.2f}x below "
            f"{args.min_advantage:.2f}x — the O(delta) path "
            f"regressed toward O(total)"
            for name, value
            in (("poll", result["advantage"]),
                ("statistics render", result["stats_advantage"]))
            if value < args.min_advantage]
    if args.max_telemetry_overhead is not None:
        overhead = result["telemetry"]
        budget = (overhead["off_s"] * (1.0 + args.max_telemetry_overhead)
                  + OVERHEAD_SLACK_S)
        if overhead["on_s"] > budget:
            failures.append(
                f"telemetry overhead {overhead['overhead'] * 100:.1f}% "
                f"exceeds the {args.max_telemetry_overhead * 100:.0f}% "
                f"budget ({overhead['on_s'] * 1e3:.1f} ms on vs "
                f"{overhead['off_s'] * 1e3:.1f} ms off)")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 3 (ls / ls -l DFGs) and Fig. 4 (filtered file-level DFG).

These figures are combinatorially exact: the bench asserts the paper's
edge weights verbatim while timing the synthesis steps (mapping
application, DFG construction, statistics).
"""

import pytest

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallPathTail, CallTopDirs
from repro.core.statistics import IOStatistics

from conftest import paper_vs_measured


def test_fig3_dfg_construction(benchmark, ls_trace_dir):
    base = EventLog.from_source(ls_trace_dir)

    def synthesize():
        log = base.with_mapping(CallTopDirs(levels=2))
        return DFG(log)

    dfg = benchmark(synthesize)
    # Fig. 3d combined-graph weights.
    checks = [
        ("• -> read:/usr/lib", 6,
         dfg.edge_count(START_ACTIVITY, "read:/usr/lib")),
        ("read:/usr/lib self-loop", 12,
         dfg.edge_count("read:/usr/lib", "read:/usr/lib")),
        ("locale.alias -> write:/dev/pts", 3,
         dfg.edge_count("read:/etc/locale.alias", "write:/dev/pts")),
        ("passwd -> group", 3,
         dfg.edge_count("read:/etc/passwd", "read:/etc/group")),
        ("write:/dev/pts -> ■", 6,
         dfg.edge_count("write:/dev/pts", END_ACTIVITY)),
    ]
    for name, expected, got in checks:
        assert got == expected, name
    paper_vs_measured("Fig. 3 — DFG edge weights (exact)", [
        (name, str(expected), str(got)) for name, expected, got in checks
    ])


def test_fig3_statistics(benchmark, ls_trace_dir):
    log = EventLog.from_source(ls_trace_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))

    stats = benchmark(lambda: IOStatistics(log))
    rd_sum = sum(stats[a].relative_duration for a in stats.activities())
    assert abs(rd_sum - 1.0) < 1e-9
    assert stats["read:/usr/lib"].total_bytes == 6 * 3 * 832
    paper_vs_measured("Fig. 3 — node statistics", [
        ("Σ rd_f", "1.00 (definition)", f"{rd_sum:.2f}"),
        ("bytes(read:/usr/lib)", "14.98 KB", stats[
            "read:/usr/lib"].load_label.split("(")[1].rstrip(")")),
    ])


def test_fig4_filtered_dfg(benchmark, ls_trace_dir):
    base = EventLog.from_source(ls_trace_dir)

    def synthesize():
        log = base.filtered_fp("/usr/lib")
        log.apply_mapping_fn(CallPathTail(levels=2))
        return DFG(log)

    dfg = benchmark(synthesize)
    selinux = "read:x86_64-linux-gnu/libselinux.so.1"
    libc = "read:x86_64-linux-gnu/libc.so.6"
    pcre = "read:x86_64-linux-gnu/libpcre2-8.so.0.10.4"
    assert dfg.activities() == {selinux, libc, pcre}
    paper_vs_measured("Fig. 4 — /usr/lib chain weights (exact)", [
        ("• -> libselinux", "6",
         str(dfg.edge_count(START_ACTIVITY, selinux))),
        ("libselinux -> libc", "6", str(dfg.edge_count(selinux, libc))),
        ("libc -> libpcre2", "6", str(dfg.edge_count(libc, pcre))),
        ("libpcre2 -> ■", "6",
         str(dfg.edge_count(pcre, END_ACTIVITY))),
    ])
    assert dfg.edge_count(selinux, libc) == 6
    assert dfg.edge_count(libc, pcre) == 6

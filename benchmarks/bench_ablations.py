"""Ablations of the design choices called out in DESIGN.md.

1. **Dictionary encoding / distinct-pair mapping fast path** — the
   columnar frame evaluates call/fp-only mappings once per distinct
   (call, fp) pair instead of per event. Ablation: force the row-wise
   path and compare.
2. **Sweep-line max-concurrency** — O(n log n) vectorized sweep vs the
   O(n²) reference (both proven equal by hypothesis tests).
3. **Store chunk size** — write/read cost of the .elog container across
   chunk granularities.
"""

import numpy as np
import pytest

from repro._util.intervals import max_concurrency, max_concurrency_naive
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.elstore.reader import EventLogStore
from repro.elstore.writer import EventLogWriter
from repro.strace.naming import TraceFileName
from repro.strace.parser import ParsedRecord

from bench_complexity import synthetic_log
from conftest import paper_vs_measured


class TestMappingFastPath:
    N = 60_000

    @pytest.fixture(scope="class")
    def log(self):
        return synthetic_log(self.N)

    def test_fast_path(self, benchmark, log):
        mapping = CallTopDirs(levels=2)
        mapped = benchmark(log.with_mapping, mapping)
        assert len(mapped.activities()) > 0

    def test_rowwise_ablation(self, benchmark, log):
        """Same mapping, forced through the per-event Python loop."""
        inner = CallTopDirs(levels=2)
        mapped = benchmark(log.with_mapping,
                           lambda event: inner.map_event(event))
        assert len(mapped.activities()) > 0

    def test_results_identical(self, benchmark, log):
        inner = CallTopDirs(levels=2)
        fast, slow = benchmark.pedantic(
            lambda: (log.with_mapping(inner),
                     log.with_mapping(
                         lambda event: inner.map_event(event))),
            rounds=1, iterations=1)
        pools_fast = fast.frame.pools.activities
        pools_slow = slow.frame.pools.activities
        fast_names = [pools_fast.decode(int(c))
                      for c in fast.frame.column("activity")]
        slow_names = [pools_slow.decode(int(c))
                      for c in slow.frame.column("activity")]
        assert fast_names == slow_names


class TestConcurrencyAblation:
    N = 2_000

    @pytest.fixture(scope="class")
    def intervals(self):
        rng = np.random.default_rng(11)
        starts = rng.integers(0, 10**6, size=self.N).astype(float)
        durations = rng.integers(0, 10**4, size=self.N).astype(float)
        return np.stack([starts, starts + durations], axis=1)

    def test_sweep_line(self, benchmark, intervals):
        mc = benchmark(max_concurrency, intervals)
        assert mc >= 1

    def test_naive_reference_ablation(self, benchmark, intervals):
        mc = benchmark.pedantic(max_concurrency_naive, args=(intervals,),
                                rounds=2, iterations=1)
        assert mc == max_concurrency(intervals)


class TestStoreChunkSize:
    N = 50_000

    @pytest.fixture(scope="class")
    def records(self):
        return [
            ParsedRecord(pid=1, start_us=i, call="read",
                         fp=f"/data/f{i % 50}", size=i % 4096,
                         dur_us=3, retval=None, errno=None,
                         requested=None, args=())
            for i in range(self.N)
        ]

    @pytest.mark.parametrize("chunk_values", [256, 4096, 65536])
    def test_write_read_roundtrip(self, benchmark, records, tmp_path,
                                  chunk_values):
        counter = [0]

        def roundtrip():
            counter[0] += 1
            path = tmp_path / f"c{chunk_values}_{counter[0]}.elog"
            with EventLogWriter(path, chunk_values=chunk_values) as w:
                w.add_case_records(TraceFileName("a", "h", 1), records)
            return EventLogStore(path).read_case("a1")

        data = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
        assert len(data["start"]) == self.N

"""Fig. 5: the timeline plot and the max-concurrency statistic.

The figure shows t_f̂("read:/usr/lib", Cb) with mc = 2. The bench
asserts that reading and times both the sweep-line computation and the
timeline rendering; the naive O(n²) reference is timed in the
concurrency ablation (bench_ablation_concurrency).
"""

import pytest

from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.render.timeline import (
    render_timeline_ascii,
    render_timeline_svg,
)
from repro.core.statistics import IOStatistics

from conftest import paper_vs_measured


@pytest.fixture(scope="module")
def cb_stats(ls_trace_dir):
    log = EventLog.from_source(ls_trace_dir, cids={"b"})
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return IOStatistics(log)


def test_fig5_max_concurrency(benchmark, ls_trace_dir):
    log = EventLog.from_source(ls_trace_dir, cids={"b"})
    log.apply_mapping_fn(CallTopDirs(levels=2))

    stats = benchmark(lambda: IOStatistics(log))
    mc = stats["read:/usr/lib"].max_concurrency
    paper_vs_measured("Fig. 5 — max-concurrency of read:/usr/lib (Cb)", [
        ("mc_f̂", "2", str(mc)),
    ])
    assert mc == 2


def test_fig5_timeline_svg_render(benchmark, cb_stats):
    rows = cb_stats.timeline("read:/usr/lib")
    text = benchmark(render_timeline_svg, rows,
                     activity="read:/usr/lib")
    assert text.count('fill="#4292c6"') == 9  # 3 reads × 3 cases
    assert "b9157" in text


def test_fig5_timeline_ascii_render(benchmark, cb_stats):
    rows = cb_stats.timeline("read:/usr/lib")
    text = benchmark(render_timeline_ascii, rows,
                     activity="read:/usr/lib")
    assert text.count("|") == 6  # 3 case rows, 2 bars each

"""Shared fixtures for the figure-reproduction benchmarks.

The full-scale runs (96 ranks over 2 nodes — the paper's setup) are
simulated once per session and shared across benches. Each bench both
*times* its pipeline stage (pytest-benchmark) and *asserts* the paper's
shape; the printed paper-vs-measured rows land in stdout (run with
``-s`` to see them live) and are summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    EXPERIMENT_B_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import IORConfig, simulate_ior
from repro.simulate.workloads.ls import generate_fig1_traces

#: The paper's experiment scale (Sec. V): 96 ranks on 2 nodes,
#: -t 1m -b 16m -s 3.
PAPER_RANKS = 96
PAPER_RANKS_PER_NODE = 48


@pytest.fixture(scope="session")
def ls_trace_dir(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("bench_ls")
    generate_fig1_traces(directory)
    return directory


@pytest.fixture(scope="session")
def ior_exp_a_dir(tmp_path_factory) -> Path:
    """Experiment A (Fig. 8): SSF + FPP runs at paper scale."""
    directory = tmp_path_factory.mktemp("bench_ior_a")
    ssf = simulate_ior(IORConfig(
        ranks=PAPER_RANKS, ranks_per_node=PAPER_RANKS_PER_NODE,
        cid="ssf", test_file="/p/scratch/ssf/test", seed=4242))
    fpp = simulate_ior(IORConfig(
        ranks=PAPER_RANKS, ranks_per_node=PAPER_RANKS_PER_NODE,
        cid="fpp", file_per_process=True,
        test_file="/p/scratch/fpp/test", base_rid=30000, seed=4243))
    write_trace_files(ssf.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS)
    write_trace_files(fpp.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS)
    return directory


@pytest.fixture(scope="session")
def ior_exp_b_dir(tmp_path_factory) -> Path:
    """Experiment B (Fig. 9): POSIX vs MPI-IO, both SSF, incl. lseek."""
    directory = tmp_path_factory.mktemp("bench_ior_b")
    posix = simulate_ior(IORConfig(
        ranks=PAPER_RANKS, ranks_per_node=PAPER_RANKS_PER_NODE,
        cid="posix", test_file="/p/scratch/ssf/test", seed=5151))
    mpiio = simulate_ior(IORConfig(
        ranks=PAPER_RANKS, ranks_per_node=PAPER_RANKS_PER_NODE,
        cid="mpiio", api="mpiio", test_file="/p/scratch/ssf/test2",
        base_rid=40000, seed=5152))
    write_trace_files(posix.recorders, directory,
                      trace_calls=EXPERIMENT_B_CALLS)
    write_trace_files(mpiio.recorders, directory,
                      trace_calls=EXPERIMENT_B_CALLS)
    return directory


def paper_vs_measured(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a compact paper-vs-measured table (visible with -s)."""
    width = max((len(r[0]) for r in rows), default=10)
    print(f"\n=== {title} ===")
    print(f"{'quantity'.ljust(width)}  {'paper':>18}  {'measured':>18}")
    for name, paper, measured in rows:
        print(f"{name.ljust(width)}  {paper:>18}  {measured:>18}")

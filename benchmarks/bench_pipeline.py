"""Overhead analysis of the full pipeline (Sec. V "Implementation").

Measures each stage of the paper's workflow at experiment-A scale:
parse (.st → cases), pack (cases → .elog), load (.elog → EventLog),
synthesize (map + DFG + stats), render. The store round trip is also
checked for losslessness: the DFG from the store must equal the DFG
from the raw traces.
"""

import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import SiteVariables
from repro.core.render.dot import render_dot
from repro.core.statistics import IOStatistics
from repro.elstore.convert import convert_strace_dir
from repro.elstore.reader import EventLogStore, read_event_log
from repro.simulate.workloads.ior import JUWELS_SITE_VARIABLES

from conftest import paper_vs_measured


@pytest.fixture(scope="module")
def store_path(ior_exp_a_dir, tmp_path_factory):
    out = tmp_path_factory.mktemp("store") / "exp_a.elog"
    convert_strace_dir(ior_exp_a_dir, out)
    return out


def test_stage_parse(benchmark, ior_exp_a_dir):
    log = benchmark.pedantic(EventLog.from_source,
                             args=(ior_exp_a_dir,), rounds=3,
                             iterations=1)
    assert log.n_cases == 192


def test_stage_pack(benchmark, ior_exp_a_dir, tmp_path):
    counter = [0]

    def pack():
        counter[0] += 1
        return convert_strace_dir(
            ior_exp_a_dir, tmp_path / f"packed{counter[0]}.elog")

    out = benchmark.pedantic(pack, rounds=3, iterations=1)
    store = EventLogStore(out)
    assert store.n_cases == 192


def test_stage_load_store(benchmark, store_path):
    log = benchmark.pedantic(read_event_log, args=(store_path,),
                             rounds=3, iterations=1)
    assert log.n_cases == 192


def test_stage_synthesize(benchmark, store_path):
    base = read_event_log(store_path)

    def synthesize():
        log = base.with_mapping(SiteVariables(JUWELS_SITE_VARIABLES))
        return DFG(log), IOStatistics(log)

    dfg, stats = benchmark.pedantic(synthesize, rounds=3, iterations=1)
    assert dfg.n_nodes > 5


def test_stage_render(benchmark, store_path):
    log = read_event_log(store_path).with_mapping(
        SiteVariables(JUWELS_SITE_VARIABLES))
    dfg, stats = DFG(log), IOStatistics(log)
    text = benchmark(render_dot, dfg, stats)
    assert text.startswith("digraph")


def test_store_roundtrip_lossless(benchmark, ior_exp_a_dir, store_path):
    """.st → EventLog and .st → .elog → EventLog give identical DFGs."""
    mapping = SiteVariables(JUWELS_SITE_VARIABLES)

    def both():
        direct = EventLog.from_source(ior_exp_a_dir) \
            .with_mapping(mapping)
        stored = read_event_log(store_path).with_mapping(mapping)
        return DFG(direct), DFG(stored)

    direct_dfg, stored_dfg = benchmark.pedantic(both, rounds=1,
                                                iterations=1)
    assert direct_dfg == stored_dfg
    # Store is also the smaller artifact (packed, deduplicated paths).
    import os
    raw_bytes = sum(p.stat().st_size
                    for p in ior_exp_a_dir.glob("*.st"))
    packed_bytes = os.stat(store_path).st_size
    paper_vs_measured("Pipeline — storage footprint", [
        ("raw .st bytes", "-", f"{raw_bytes:,}"),
        (".elog bytes", "smaller", f"{packed_bytes:,}"),
    ])
    assert packed_bytes < raw_bytes
